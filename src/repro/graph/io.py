"""Graph serialisation: edge lists, MatrixMarket, METIS, SNAP and ``.npz``.

Dataset ingestion layer for the batch pipeline.  Supported formats:

* **edgelist** — one ``u v`` pair per line with an optional header comment
  ``# vertices N`` (needed to preserve isolated trailing vertices).
* **mtx** — MatrixMarket coordinate format, the interchange format of the
  SuiteSparse / sparse-matrix world (1-based, ``pattern``/``real``/
  ``integer`` fields, ``symmetric`` or ``general`` symmetry; weights are
  ignored, the adjacency pattern is what matters here).
* **snap** — SNAP-style edge lists: ``#``-commented headers, tab- or
  space-separated pairs, arbitrary non-contiguous vertex ids that are
  compacted to ``0..k-1`` via
  :func:`repro.graph.builder.compact_labels`.
* **metis** — the graph-partitioning community's adjacency format.
* **npz** — NumPy binary of the CSR arrays (exact round-trip).

Any text format transparently reads/writes gzip when the path ends in
``.gz``.  :func:`load_graph` / :func:`save_graph` dispatch on an explicit
format name or on auto-detection (:func:`detect_format`: extension first,
content sniffing as fallback).  The big-file readers (``mtx``, ``snap``)
parse in bulk — fixed-size text chunks are split and converted with one
NumPy call per chunk instead of a Python loop per line.
"""

from __future__ import annotations

import gzip
import io
import os
from collections.abc import Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import compact_labels, from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "save_npz",
    "load_npz",
    "write_metis",
    "read_metis",
    "write_mtx",
    "read_mtx",
    "read_snap",
    "detect_format",
    "detect_format_stream",
    "EdgeStream",
    "load_graph",
    "save_graph",
    "strip_format_extension",
    "FORMATS",
    "STREAMABLE_FORMATS",
]

#: Formats :func:`load_graph` understands (``save_graph`` writes all but
#: ``snap``, which is a read-side convention, not a distinct writer).
FORMATS = ("edgelist", "mtx", "metis", "npz", "snap")

#: Formats :class:`EdgeStream` can iterate chunk-wise without ever
#: materialising the full edge list (``metis`` is row-oriented and
#: ``npz`` is already binary CSR — neither needs nor supports streaming).
STREAMABLE_FORMATS = ("edgelist", "mtx", "snap")

#: Characters of text per bulk-parse chunk (~1 MiB).
_CHUNK_CHARS = 1 << 20

#: Bytes of prefix :func:`detect_format_stream` examines (plenty for any
#: banner/header line; gzip members decompress enough within this).
_SNIFF_BYTES = 1 << 16

_EXTENSION_FORMATS = {
    ".mtx": "mtx",
    ".mm": "mtx",
    ".npz": "npz",
    ".metis": "metis",
    ".graph": "metis",
    ".snap": "snap",
    ".edges": "edgelist",
    ".el": "edgelist",
    ".edgelist": "edgelist",
}


def strip_format_extension(name: str) -> str:
    """Drop a trailing ``.gz`` plus any known graph-format extension.

    ``ca-GrQc.txt.gz`` -> ``ca-GrQc``; unknown extensions are kept.  The
    CLI uses this to derive per-input output stems, so the set of
    recognised extensions stays defined in exactly one place.
    """
    if name.endswith(".gz"):
        name = name[:-3]
    ext = os.path.splitext(name)[1].lower()
    # ".txt" deliberately sniffs rather than maps (see detect_format) but
    # is still a recognised spelling worth stripping from output stems.
    if ext in _EXTENSION_FORMATS or ext == ".txt":
        name = name[: -len(ext)]
    return name


def _open_text(path: str | os.PathLike, mode: str):
    """Open a text file, transparently gzip-compressed for ``*.gz`` paths."""
    name = os.fspath(path)
    if str(name).endswith(".gz"):
        return gzip.open(name, mode + "t", encoding="utf-8")
    return open(name, mode, encoding="utf-8")


def _data_blocks(fh, comment_prefixes: tuple[str, ...], on_comment=None):
    """Yield comment-free text blocks from ``fh`` in ~1 MiB chunks.

    The fast path hands a whole chunk through untouched; only chunks that
    actually contain a comment line fall back to per-line filtering
    (comments sit at the top of real-world files, so almost every chunk
    takes the fast path).  ``on_comment`` receives each stripped comment
    line.
    """
    tail = ""
    while True:
        block = fh.read(_CHUNK_CHARS)
        if not block:
            break
        block = tail + block
        cut = block.rfind("\n")
        if cut < 0:
            tail = block
            continue
        tail = block[cut + 1 :]
        yield from _strip_comments(block[: cut + 1], comment_prefixes, on_comment)
    if tail:
        yield from _strip_comments(tail, comment_prefixes, on_comment)


def _strip_comments(text: str, prefixes: tuple[str, ...], on_comment):
    has_comment = text.startswith(prefixes) or any(
        "\n" + p in text for p in prefixes
    )
    if not has_comment:
        yield text
        return
    kept: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(prefixes):
            if on_comment is not None:
                on_comment(stripped)
            continue
        kept.append(line)
    if kept:
        yield "\n".join(kept)


def _block_tokens(block: str) -> np.ndarray:
    """One comment-free text block as a float64 token array."""
    try:
        return np.array(block.split(), dtype=np.float64)
    except ValueError as exc:
        raise GraphFormatError(f"non-numeric token in graph data: {exc}") from exc


def _bulk_tokens(fh, comment_prefixes: tuple[str, ...], on_comment=None) -> np.ndarray:
    """All whitespace-separated numeric tokens of ``fh`` as one float64 array.

    float64 keeps the converter uniform across pattern (int-only) and
    weighted (mixed) files; ids are exact up to 2**53, far beyond any
    graph this library can hold.
    """
    parts: list[np.ndarray] = []
    for block in _data_blocks(fh, comment_prefixes, on_comment):
        parts.append(_block_tokens(block))
    if not parts:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(parts)


def _int_column_pair(values: np.ndarray, what: str) -> np.ndarray:
    """Validate that an ``(m, 2)`` float column pair is integral; cast."""
    if not np.all(values == np.floor(values)):
        raise GraphFormatError(f"{what}: vertex ids must be integers")
    return values.astype(np.int64)


def write_edgelist(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase) -> None:
    """Write ``graph`` as a text edge list (with a ``# vertices`` header)."""
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "w") if own else path
    try:
        fh.write(f"# vertices {graph.num_vertices}\n")
        for u, v in graph.edge_array():
            fh.write(f"{u} {v}\n")
    finally:
        if own:
            fh.close()


def read_edgelist(path: str | os.PathLike | io.TextIOBase) -> CSRGraph:
    """Read a text edge list written by :func:`write_edgelist`.

    Lines starting with ``#`` are comments; ``# vertices N`` fixes the
    vertex count (otherwise ``max id + 1`` is used).
    """
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "r") if own else path
    try:
        n_declared = -1
        pairs: list[tuple[int, int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    n_declared = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(f"line {lineno}: expected 'u v', got {line!r}")
            pairs.append((int(parts[0]), int(parts[1])))
    finally:
        if own:
            fh.close()
    if pairs:
        arr = np.asarray(pairs, dtype=np.int64)
        n = n_declared if n_declared >= 0 else int(arr.max()) + 1
    else:
        arr = np.empty((0, 2), dtype=np.int64)
        n = max(n_declared, 0)
    return from_edge_array(n, arr)


def write_metis(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase) -> None:
    """Write in METIS graph format (1-based; line ``i`` lists vertex
    ``i-1``'s neighbors).  The de-facto interchange format of the graph
    partitioning community the distributed baseline belongs to."""
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "w") if own else path
    try:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")
    finally:
        if own:
            fh.close()


def read_metis(path: str | os.PathLike | io.TextIOBase) -> CSRGraph:
    """Read a METIS-format graph (topology only).

    Accepts the plain unweighted format plus the vertex-weighted
    variants (fmt codes ``10`` / ``11``, and ``100``/``110`` with vertex
    sizes): vertex sizes/weights — ``ncon`` per vertex — are skipped,
    and for fmt ``11`` the edge weights interleaved with the adjacency
    are skipped too, keeping the topology.  Edge-weight-*only* files
    (fmt ``1`` / ``01``) are rejected with an error naming the fmt
    field.  Comment lines start with ``%``; trailing blank lines are
    tolerated (a blank line *within* the first ``n`` rows is an isolated
    vertex, per the format).
    """
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "r") if own else path
    try:
        header: list[int] | None = None
        skip = 0
        has_ewgt = False
        rows: list[list[int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line.startswith("%"):
                continue
            if header is None:
                if not line:
                    continue  # leading blank lines before the header
                parts = line.split()
                if len(parts) < 2:
                    raise GraphFormatError(
                        f"line {lineno}: METIS header needs 'n m', got {line!r}"
                    )
                fmt = parts[2] if len(parts) >= 3 else "0"
                if len(fmt) > 3 or any(ch not in "01" for ch in fmt):
                    raise GraphFormatError(
                        f"line {lineno}: malformed METIS fmt field {fmt!r}"
                    )
                has_vsize, has_vwgt, has_ewgt = (
                    ch == "1" for ch in fmt.zfill(3)
                )
                if has_ewgt and not has_vwgt:
                    raise GraphFormatError(
                        f"line {lineno}: METIS fmt field {fmt!r} declares "
                        "edge weights, which are not supported (vertex-"
                        "weighted graphs are read topology-only)"
                    )
                ncon = int(parts[3]) if len(parts) >= 4 else 1
                skip = (1 if has_vsize else 0) + (ncon if has_vwgt else 0)
                header = [int(parts[0]), int(parts[1])]
                continue
            tokens = line.split()
            if not tokens:
                rows.append([])  # isolated vertex (or a trailing blank)
                continue
            if len(tokens) < skip:
                raise GraphFormatError(
                    f"line {lineno}: vertex row has {len(tokens)} tokens "
                    f"but the fmt field requires {skip} weight tokens"
                )
            tokens = tokens[skip:]
            if has_ewgt:
                if len(tokens) % 2:
                    raise GraphFormatError(
                        f"line {lineno}: fmt declares edge weights but the "
                        "row has an odd number of neighbor/weight tokens"
                    )
                tokens = tokens[0::2]
            rows.append([int(tok) - 1 for tok in tokens])
        if header is None:
            raise GraphFormatError("empty METIS file (missing header)")
        n, m = header
        while len(rows) > n and not rows[-1]:
            rows.pop()  # trailing blank lines
        if len(rows) < n:
            rows.extend([[] for _ in range(n - len(rows))])
        elif len(rows) > n:
            raise GraphFormatError(
                f"METIS header declares {n} vertices but file has {len(rows)} rows"
            )
        pairs: list[tuple[int, int]] = []
        for v, nbrs in enumerate(rows):
            for u in nbrs:
                pairs.append((v, u))
        graph = from_edge_array(
            n, np.asarray(pairs, dtype=np.int64) if pairs else np.empty((0, 2), np.int64)
        )
        if graph.num_edges != m:
            raise GraphFormatError(
                f"METIS header declares {m} edges but adjacency encodes {graph.num_edges}"
            )
        return graph
    finally:
        if own:
            fh.close()


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save CSR arrays to a compressed ``.npz`` file (exact round-trip)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        sorted_adjacency=np.asarray(graph.sorted_adjacency),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(
            data["indptr"],
            data["indices"],
            sorted_adjacency=bool(data["sorted_adjacency"]),
            validate=True,
        )


def write_mtx(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase) -> None:
    """Write in MatrixMarket coordinate format (``pattern symmetric``).

    One entry per undirected edge, stored in the lower triangle
    (``row > col``, 1-based) as the MatrixMarket symmetric convention
    requires.  The matrix is square ``n x n``, so isolated vertices
    round-trip.
    """
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "w") if own else path
    try:
        n = graph.num_vertices
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write("% maximal chordal subgraph repro library\n")
        fh.write(f"{n} {n} {graph.num_edges}\n")
        edges = graph.edge_array()
        if edges.size:
            # edge_array rows are (u, v) with u < v; lower triangle is (v, u).
            np.savetxt(fh, np.column_stack((edges[:, 1] + 1, edges[:, 0] + 1)), fmt="%d")
    finally:
        if own:
            fh.close()


def _parse_mtx_banner(fh) -> tuple[str, str]:
    """Consume and validate the MatrixMarket banner line; returns
    ``(field, symmetry)``."""
    banner = fh.readline().strip()
    parts = banner.lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket":
        raise GraphFormatError(
            f"not a MatrixMarket file (banner {banner!r}); expected "
            "'%%MatrixMarket matrix coordinate <field> <symmetry>'"
        )
    _, obj, fmt, field, symmetry = parts
    if obj != "matrix" or fmt != "coordinate":
        raise GraphFormatError(
            f"only 'matrix coordinate' MatrixMarket files are supported, "
            f"got '{obj} {fmt}'"
        )
    if field not in ("pattern", "real", "integer", "double"):
        raise GraphFormatError(f"unsupported MatrixMarket field {field!r}")
    if symmetry not in ("symmetric", "general", "skew-symmetric"):
        raise GraphFormatError(f"unsupported MatrixMarket symmetry {symmetry!r}")
    return field, symmetry


def read_mtx(path: str | os.PathLike | io.TextIOBase) -> CSRGraph:
    """Read a MatrixMarket coordinate file as an undirected graph.

    Accepts ``pattern``, ``real`` and ``integer`` fields (weights are
    dropped — only the sparsity pattern becomes adjacency) with
    ``symmetric``, ``skew-symmetric`` or ``general`` symmetry; the matrix
    must be square.  Self-loops (diagonal entries) are discarded and
    duplicate/mirrored entries collapse, courtesy of the builder.
    """
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "r") if own else path
    try:
        field, _symmetry = _parse_mtx_banner(fh)
        tokens = _bulk_tokens(fh, ("%",))
    finally:
        if own:
            fh.close()
    if tokens.size < 3:
        raise GraphFormatError("MatrixMarket file is missing its size line")
    rows, cols, nnz = (int(t) for t in tokens[:3])
    if rows != cols:
        raise GraphFormatError(
            f"adjacency matrix must be square, got {rows} x {cols}"
        )
    data = tokens[3:]
    per_entry = 2 if field == "pattern" else 3
    if data.size != nnz * per_entry:
        # One-sided leniency: a pattern-declared file carrying weight
        # columns is reinterpretable without data loss, but a weighted
        # file with only 2 tokens per entry is indistinguishable from a
        # truncated download — reject it rather than read weights as ids.
        if field == "pattern" and nnz and data.size == nnz * 3:
            per_entry = 3
        else:
            raise GraphFormatError(
                f"MatrixMarket size line declares {nnz} entries of "
                f"{per_entry} tokens but file has {data.size} data tokens"
            )
    entries = data.reshape(nnz, per_entry)[:, :2] if nnz else np.empty((0, 2))
    pairs = _int_column_pair(entries, "MatrixMarket entries")
    if pairs.size and (pairs.min() < 1 or pairs.max() > rows):
        raise GraphFormatError(
            f"MatrixMarket index out of range for a {rows} x {cols} matrix "
            "(indices are 1-based)"
        )
    return from_edge_array(rows, pairs - 1)


def read_snap(
    path: str | os.PathLike | io.TextIOBase,
) -> tuple[CSRGraph, np.ndarray]:
    """Read a SNAP-style edge list; compact non-contiguous vertex ids.

    SNAP dumps (https://snap.stanford.edu/data/) are ``#``-commented,
    tab- or space-separated ``src dst`` pairs over arbitrary — typically
    sparse — integer ids.  Returns ``(graph, labels)`` with
    ``labels[new_id] = original_id`` (see
    :func:`repro.graph.builder.compact_labels`); directedness is dropped
    (the pair becomes one undirected edge).
    """
    own = isinstance(path, (str, os.PathLike))
    fh = _open_text(path, "r") if own else path
    try:
        tokens = _bulk_tokens(fh, ("#", "%"))
    finally:
        if own:
            fh.close()
    if tokens.size == 0:
        return from_edge_array(0, np.empty((0, 2), dtype=np.int64)), np.empty(
            0, dtype=np.int64
        )
    if tokens.size % 2 != 0:
        raise GraphFormatError(
            f"SNAP edge list has {tokens.size} tokens, not an even number "
            "of 'src dst' pairs"
        )
    pairs = _int_column_pair(tokens.reshape(-1, 2), "SNAP edge list")
    n, relabeled, labels = compact_labels(pairs)
    return from_edge_array(n, relabeled), labels


def detect_format(path: str | os.PathLike) -> str:
    """Best-effort format detection: extension first, content sniffing second.

    A trailing ``.gz`` is stripped before the extension lookup (so
    ``graph.mtx.gz`` is ``mtx``).  The generic ``.txt`` extension is
    deliberately *not* mapped — real-world SNAP dumps ship as ``.txt``,
    so those files go through content sniffing, which separates our
    ``# vertices``-headed edge lists from SNAP's sparse-id comment
    headers.  Unknown extensions fall back to reading
    the first non-blank line: a MatrixMarket banner, a METIS ``%`` comment,
    the npz/zip magic, a ``#`` comment (``# vertices`` means our edgelist
    header, anything else SNAP), or a plain data line (2 tokens =
    edgelist, 3 = METIS header with a format flag).  A comment-free METIS
    file whose header omits the format flag is indistinguishable from an
    edge pair and sniffs as ``edgelist`` — use the ``.metis``/``.graph``
    extension or an explicit format for those.  Raises
    :class:`GraphFormatError` when nothing matches.
    """
    name = os.fspath(path)
    stem = name[:-3] if str(name).endswith(".gz") else name
    ext = os.path.splitext(stem)[1].lower()
    if ext in _EXTENSION_FORMATS:
        return _EXTENSION_FORMATS[ext]
    try:
        with open(name, "rb") as fh:
            if fh.read(2) == b"PK":  # npz is a zip archive
                return "npz"
        with _open_text(name, "r") as fh:
            first = _first_nonblank_line(fh.read(_SNIFF_BYTES))
    except (OSError, UnicodeDecodeError) as exc:
        # OSError covers missing files and misnamed gzip; UnicodeDecodeError
        # covers binary junk — both are "nothing matches", per the contract.
        raise GraphFormatError(f"cannot sniff {name!r}: {exc}") from exc
    return _classify_first_line(first, repr(name))


def _first_nonblank_line(text: str) -> str:
    for line in text.splitlines():
        if line.strip():
            return line.strip()
    return ""


def _classify_first_line(first: str, what: str) -> str:
    """Shared content classifier behind :func:`detect_format` and
    :func:`detect_format_stream` (see ``detect_format`` for the rules)."""
    if first.lower().startswith("%%matrixmarket"):
        return "mtx"
    if first.startswith("%"):
        return "metis"
    if first.startswith("#"):
        return "edgelist" if "vertices" in first else "snap"
    tokens = first.split()
    if len(tokens) == 2:
        return "edgelist"
    if len(tokens) == 3:
        return "metis"
    raise GraphFormatError(
        f"cannot detect graph format of {what} (first line {first!r}); "
        f"pass an explicit format from {FORMATS}"
    )


def detect_format_stream(stream) -> str:
    """Detect the format of an **open** stream without consuming it.

    The sharded extractor runs several passes over one input handle, so
    detection must leave the stream exactly where it found it.  Works on:

    * binary buffered readers (``open(path, "rb")``) — uses ``peek``
      when available, falling back to read + seek-back; transparently
      sniffs through a gzip header (the prefix is decompressed in
      memory, the stream itself is untouched);
    * seekable text handles (``open(path, "r")``, ``io.StringIO``) —
      read + seek-back.

    Non-seekable, non-peekable streams (pipes) raise
    :class:`GraphFormatError` — pass an explicit format for those.
    """
    prefix = _peek_prefix(stream)
    if isinstance(prefix, bytes):
        if prefix[:2] == b"PK":
            return "npz"
        if prefix[:2] == b"\x1f\x8b":
            import zlib

            try:
                prefix = zlib.decompressobj(wbits=31).decompress(
                    prefix, _SNIFF_BYTES
                )
            except zlib.error as exc:
                raise GraphFormatError(
                    f"cannot sniff stream: bad gzip prefix ({exc})"
                ) from exc
        try:
            text = prefix.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise GraphFormatError(
                f"cannot sniff stream: binary content ({exc})"
            ) from exc
    else:
        text = prefix
    return _classify_first_line(_first_nonblank_line(text), "stream")


def _peek_prefix(stream) -> bytes | str:
    """A prefix of ``stream`` with the read position left unchanged."""
    peek = getattr(stream, "peek", None)
    if callable(peek):
        try:
            return peek(_SNIFF_BYTES)[:_SNIFF_BYTES]
        except OSError:
            pass  # fall through to seek-based peeking
    try:
        if stream.seekable():
            pos = stream.tell()
            data = stream.read(_SNIFF_BYTES)
            stream.seek(pos)
            return data
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot sniff stream: {exc}") from exc
    raise GraphFormatError(
        "cannot sniff a non-seekable stream without peek support; pass an "
        f"explicit format from {FORMATS}"
    )


class EdgeStream:
    """Chunked, bounded-memory edge iteration over a text graph file.

    The out-of-core sharded extractor's input primitive: iterate the
    edges of an ``edgelist`` / ``snap`` / ``mtx`` file (optionally
    gzipped) as a sequence of ``(k, 2)`` int64 chunks — built on the
    same ~1 MiB bulk chunk parser the big-file readers use — so one
    pass over a billion-edge file holds a single chunk of endpoint ids
    at a time, never the full edge list.

    Ids are raw file ids: MatrixMarket's 1-based ids are shifted to
    0-based (and range-checked against the size line), but SNAP's
    sparse ids are *not* compacted — compaction needs global knowledge,
    which the caller owns (see
    :func:`repro.graph.builder.compact_labels`).  Self-loops and
    duplicate edges pass through untouched for the same reason.

    Iterating is restartable (the file is reopened per pass).  Two
    attributes are populated once iteration has consumed the header
    (``None`` before that, and for headerless files):

    * ``declared_vertices`` — the ``# vertices N`` edgelist header, or
      the MatrixMarket size line's dimension;
    * ``declared_edges`` — MatrixMarket's declared entry count.

    Unlike :func:`read_edgelist`, token pairing is stream-wise rather
    than line-wise (a pair may straddle a newline); malformed files
    still fail loudly — an odd token count or a MatrixMarket entry-count
    mismatch raises :class:`GraphFormatError` at end of stream.
    """

    def __init__(self, path: str | os.PathLike, format: str | None = None) -> None:
        self.path = os.fspath(path)
        fmt = format or detect_format(self.path)
        if fmt not in STREAMABLE_FORMATS:
            raise GraphFormatError(
                f"format {fmt!r} is not streamable (expected one of "
                f"{STREAMABLE_FORMATS}); metis/npz inputs load in one piece "
                "via load_graph"
            )
        self.format = fmt
        self.declared_vertices: int | None = None
        self.declared_edges: int | None = None

    def __iter__(self) -> Iterator[np.ndarray]:
        with _open_text(self.path, "r") as fh:
            if self.format == "mtx":
                yield from self._iter_mtx(fh)
            else:
                yield from self._iter_pairs(fh)

    def __repr__(self) -> str:
        return f"EdgeStream({self.path!r}, format={self.format!r})"

    def _iter_pairs(self, fh) -> Iterator[np.ndarray]:
        prefixes = ("#", "%") if self.format == "snap" else ("#",)

        def on_comment(line: str) -> None:
            parts = line[1:].split()
            if len(parts) == 2 and parts[0] == "vertices":
                self.declared_vertices = int(parts[1])

        hook = on_comment if self.format == "edgelist" else None
        carry = np.empty(0, dtype=np.float64)
        for block in _data_blocks(fh, prefixes, hook):
            tokens = _block_tokens(block)
            if carry.size:
                tokens = np.concatenate((carry, tokens))
            keep = tokens.size - tokens.size % 2
            carry = tokens[keep:]
            if keep:
                yield _int_column_pair(
                    tokens[:keep].reshape(-1, 2), f"{self.format} edge list"
                )
        if carry.size:
            raise GraphFormatError(
                f"{self.path}: {self.format} stream has an odd number of "
                "tokens — not whole 'u v' pairs"
            )

    def _iter_mtx(self, fh) -> Iterator[np.ndarray]:
        field, _symmetry = _parse_mtx_banner(fh)
        per_entry = 2 if field == "pattern" else 3
        rows = nnz = -1
        seen = 0
        carry = np.empty(0, dtype=np.float64)
        for block in _data_blocks(fh, ("%",)):
            tokens = _block_tokens(block)
            if carry.size:
                tokens = np.concatenate((carry, tokens))
            if rows < 0:
                if tokens.size < 3:
                    carry = tokens
                    continue
                size_line = _int_column_pair(
                    tokens[:3].reshape(1, 3)[:, :2], "MatrixMarket size line"
                )
                rows, cols = int(size_line[0, 0]), int(size_line[0, 1])
                nnz = int(tokens[2])
                if rows != cols:
                    raise GraphFormatError(
                        f"adjacency matrix must be square, got {rows} x {cols}"
                    )
                self.declared_vertices = rows
                self.declared_edges = nnz
                tokens = tokens[3:]
            keep = tokens.size - tokens.size % per_entry
            carry = tokens[keep:]
            if not keep:
                continue
            entries = tokens[:keep].reshape(-1, per_entry)[:, :2]
            pairs = _int_column_pair(entries, "MatrixMarket entries")
            if pairs.min(initial=1) < 1 or pairs.max(initial=1) > rows:
                raise GraphFormatError(
                    f"MatrixMarket index out of range for a {rows} x {rows} "
                    "matrix (indices are 1-based)"
                )
            seen += pairs.shape[0]
            yield pairs - 1
        if rows < 0:
            raise GraphFormatError("MatrixMarket file is missing its size line")
        if carry.size or seen != nnz:
            raise GraphFormatError(
                f"MatrixMarket size line declares {nnz} entries of "
                f"{per_entry} tokens but the stream carried {seen} whole "
                f"entries (+{carry.size} trailing tokens); a pattern file "
                "with weight columns needs the non-streaming read_mtx reader"
            )


def load_graph(
    path: str | os.PathLike | io.IOBase, format: str | None = None
) -> CSRGraph:
    """Load a graph in any supported format from a path or an open stream.

    ``format`` is one of :data:`FORMATS`; ``None`` auto-detects —
    :func:`detect_format` for paths, :func:`detect_format_stream` (peek
    based, never consumes the handle) for open streams, so a caller that
    detects and then reads gets the whole file both times.  Text formats
    read from text-mode streams; ``npz`` needs a binary stream.  The
    ``snap`` reader's id labels are dropped — call :func:`read_snap`
    directly to keep the original ids.
    """
    if not isinstance(path, (str, os.PathLike)):
        fmt = format or detect_format_stream(path)
        if fmt == "npz":
            with np.load(path) as data:
                return CSRGraph(
                    data["indptr"],
                    data["indices"],
                    sorted_adjacency=bool(data["sorted_adjacency"]),
                    validate=True,
                )
        readers = {
            "edgelist": read_edgelist,
            "mtx": read_mtx,
            "metis": read_metis,
            "snap": lambda fh: read_snap(fh)[0],
        }
        if fmt not in readers:
            raise GraphFormatError(
                f"unknown graph format {fmt!r}; expected one of {FORMATS}"
            )
        return readers[fmt](path)
    fmt = format or detect_format(path)
    if fmt == "edgelist":
        return read_edgelist(path)
    if fmt == "mtx":
        return read_mtx(path)
    if fmt == "metis":
        return read_metis(path)
    if fmt == "npz":
        return load_npz(path)
    if fmt == "snap":
        return read_snap(path)[0]
    raise GraphFormatError(f"unknown graph format {fmt!r}; expected one of {FORMATS}")


def save_graph(
    graph: CSRGraph, path: str | os.PathLike, format: str | None = None
) -> None:
    """Save ``graph`` in any supported format.

    ``None`` picks the format from the file extension, defaulting to
    ``edgelist`` for unrecognised extensions; ``snap`` is written as a
    plain edge list (SNAP is an input convention, not an output format).
    """
    fmt = format
    if fmt is None:
        name = os.fspath(path)
        stem = name[:-3] if str(name).endswith(".gz") else name
        fmt = _EXTENSION_FORMATS.get(os.path.splitext(stem)[1].lower(), "edgelist")
    if fmt in ("edgelist", "snap"):
        write_edgelist(graph, path)
    elif fmt == "mtx":
        write_mtx(graph, path)
    elif fmt == "metis":
        write_metis(graph, path)
    elif fmt == "npz":
        save_npz(graph, path)
    else:
        raise GraphFormatError(
            f"unknown graph format {fmt!r}; expected one of {FORMATS}"
        )
