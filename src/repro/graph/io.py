"""Graph serialisation: plain edge-list text and NumPy ``.npz`` binary.

The text format is one ``u v`` pair per line with an optional header
comment ``# vertices N`` (needed to preserve isolated trailing vertices).
The ``.npz`` format stores the CSR arrays directly and round-trips exactly.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "save_npz",
    "load_npz",
    "write_metis",
    "read_metis",
]


def write_edgelist(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase) -> None:
    """Write ``graph`` as a text edge list (with a ``# vertices`` header)."""
    own = isinstance(path, (str, os.PathLike))
    fh = open(path, "w", encoding="utf-8") if own else path
    try:
        fh.write(f"# vertices {graph.num_vertices}\n")
        for u, v in graph.edge_array():
            fh.write(f"{u} {v}\n")
    finally:
        if own:
            fh.close()


def read_edgelist(path: str | os.PathLike | io.TextIOBase) -> CSRGraph:
    """Read a text edge list written by :func:`write_edgelist`.

    Lines starting with ``#`` are comments; ``# vertices N`` fixes the
    vertex count (otherwise ``max id + 1`` is used).
    """
    own = isinstance(path, (str, os.PathLike))
    fh = open(path, "r", encoding="utf-8") if own else path
    try:
        n_declared = -1
        pairs: list[tuple[int, int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    n_declared = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(f"line {lineno}: expected 'u v', got {line!r}")
            pairs.append((int(parts[0]), int(parts[1])))
    finally:
        if own:
            fh.close()
    if pairs:
        arr = np.asarray(pairs, dtype=np.int64)
        n = n_declared if n_declared >= 0 else int(arr.max()) + 1
    else:
        arr = np.empty((0, 2), dtype=np.int64)
        n = max(n_declared, 0)
    return from_edge_array(n, arr)


def write_metis(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase) -> None:
    """Write in METIS graph format (1-based; line ``i`` lists vertex
    ``i-1``'s neighbors).  The de-facto interchange format of the graph
    partitioning community the distributed baseline belongs to."""
    own = isinstance(path, (str, os.PathLike))
    fh = open(path, "w", encoding="utf-8") if own else path
    try:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")
    finally:
        if own:
            fh.close()


def read_metis(path: str | os.PathLike | io.TextIOBase) -> CSRGraph:
    """Read a METIS-format graph (plain unweighted variant only).

    Validates the header counts; comment lines start with ``%``.
    """
    own = isinstance(path, (str, os.PathLike))
    fh = open(path, "r", encoding="utf-8") if own else path
    try:
        header: list[int] | None = None
        rows: list[list[int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line.startswith("%"):
                continue
            if header is None:
                parts = line.split()
                if len(parts) < 2:
                    raise GraphFormatError(
                        f"line {lineno}: METIS header needs 'n m', got {line!r}"
                    )
                if len(parts) >= 3 and parts[2] not in ("0", "00", "000"):
                    raise GraphFormatError(
                        "weighted METIS graphs are not supported"
                    )
                header = [int(parts[0]), int(parts[1])]
                continue
            rows.append([int(tok) - 1 for tok in line.split()])
        if header is None:
            raise GraphFormatError("empty METIS file (missing header)")
        n, m = header
        if len(rows) < n:
            rows.extend([[] for _ in range(n - len(rows))])
        elif len(rows) > n:
            raise GraphFormatError(
                f"METIS header declares {n} vertices but file has {len(rows)} rows"
            )
        pairs: list[tuple[int, int]] = []
        for v, nbrs in enumerate(rows):
            for u in nbrs:
                pairs.append((v, u))
        graph = from_edge_array(
            n, np.asarray(pairs, dtype=np.int64) if pairs else np.empty((0, 2), np.int64)
        )
        if graph.num_edges != m:
            raise GraphFormatError(
                f"METIS header declares {m} edges but adjacency encodes {graph.num_edges}"
            )
        return graph
    finally:
        if own:
            fh.close()


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save CSR arrays to a compressed ``.npz`` file (exact round-trip)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        sorted_adjacency=np.asarray(graph.sorted_adjacency),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(
            data["indptr"],
            data["indices"],
            sorted_adjacency=bool(data["sorted_adjacency"]),
            validate=True,
        )
