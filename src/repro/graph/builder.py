"""Construction of :class:`~repro.graph.csr.CSRGraph` from raw edge data.

The builder is the canonical sanitiser: it drops self-loops, deduplicates
parallel edges, symmetrises, and emits sorted adjacency.  R-MAT in
particular produces duplicate edges and self-loops by design, so every
generator routes through :func:`from_edge_array`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "build_graph",
    "from_edge_array",
    "from_adjacency_dict",
    "from_networkx",
    "compact_labels",
]


def compact_labels(edges: np.ndarray) -> tuple[int, np.ndarray, np.ndarray]:
    """Relabel arbitrary integer endpoints to the contiguous range ``0..k-1``.

    Real-world edge lists (SNAP dumps in particular) use sparse,
    non-contiguous — sometimes huge — vertex ids; the CSR substrate needs
    dense ids.  Returns ``(k, relabeled, labels)`` where ``k`` is the
    number of distinct endpoints, ``relabeled`` is the ``(m, 2)`` edge
    array over new ids, and ``labels[new_id] = original_id`` (sorted
    ascending, so relabeling preserves the relative id order Algorithm 1's
    lowest-parent structure is sensitive to).  Only ids that appear as an
    endpoint receive a label; isolated vertices are not representable.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return 0, e, np.empty(0, dtype=np.int64)
    labels, inverse = np.unique(e, return_inverse=True)
    return int(labels.size), inverse.reshape(e.shape).astype(np.int64), labels


def _best_index_dtype(n: int) -> np.dtype:
    """int32 when ids fit (cache-friendlier, matching the paper's platforms),
    int64 otherwise."""
    return np.dtype(np.int32) if n <= np.iinfo(np.int32).max else np.dtype(np.int64)


def from_edge_array(
    num_vertices: int,
    edges: np.ndarray,
    *,
    allow_out_of_range: bool = False,
) -> CSRGraph:
    """Build a simple undirected graph from an ``(m, 2)`` integer edge array.

    Self-loops are removed, duplicate (and reversed-duplicate) edges are
    collapsed, and adjacency slices come out strictly increasing.

    Parameters
    ----------
    num_vertices:
        The vertex-set size ``n``; endpoints must lie in ``[0, n)``.
    edges:
        ``(m, 2)`` array-like of endpoints.  May be empty.
    allow_out_of_range:
        If True, silently drop edges with endpoints outside ``[0, n)``
        instead of raising (used by samplers that over-generate).
    """
    if num_vertices < 0:
        raise GraphFormatError(f"num_vertices must be >= 0, got {num_vertices}")
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        e = e.reshape(0, 2)
    if e.ndim != 2 or e.shape[1] != 2:
        raise GraphFormatError(f"edges must have shape (m, 2), got {e.shape}")

    if e.shape[0]:
        in_range = (e >= 0).all(axis=1) & (e < num_vertices).all(axis=1)
        if not in_range.all():
            if allow_out_of_range:
                e = e[in_range]
            else:
                bad = e[~in_range][0]
                raise GraphFormatError(
                    f"edge ({bad[0]}, {bad[1]}) out of range for n={num_vertices}"
                )

    # Canonicalise: drop loops, order endpoints, dedupe via scalar encoding.
    if e.shape[0]:
        e = e[e[:, 0] != e[:, 1]]
    if e.shape[0]:
        lo = np.minimum(e[:, 0], e[:, 1])
        hi = np.maximum(e[:, 0], e[:, 1])
        keys = lo * np.int64(num_vertices) + hi
        keys = np.unique(keys)
        lo = keys // num_vertices
        hi = keys % num_vertices
    else:
        lo = np.empty(0, dtype=np.int64)
        hi = np.empty(0, dtype=np.int64)

    dtype = _best_index_dtype(num_vertices)
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    order = np.lexsort((dst, src))
    indices = dst[order].astype(dtype)
    return CSRGraph(indptr, indices, sorted_adjacency=True, validate=False)


def build_graph(num_vertices: int, edges: Iterable[tuple[int, int]]) -> CSRGraph:
    """Build a graph from any iterable of ``(u, v)`` pairs.

    Convenience wrapper over :func:`from_edge_array` for hand-written edge
    lists in tests and examples.
    """
    edge_list = list(edges)
    arr = np.asarray(edge_list, dtype=np.int64) if edge_list else np.empty((0, 2), np.int64)
    return from_edge_array(num_vertices, arr)


def from_adjacency_dict(adj: Mapping[int, Iterable[int]]) -> CSRGraph:
    """Build a graph from ``{vertex: neighbors}``.

    The vertex set is ``0 .. max_id`` where ``max_id`` is the largest id
    appearing as a key or neighbor; the mapping need not mention every
    vertex and need not be symmetric (symmetry is restored).
    """
    pairs: list[tuple[int, int]] = []
    max_id = -1
    for u, nbrs in adj.items():
        u = int(u)
        max_id = max(max_id, u)
        for v in nbrs:
            v = int(v)
            max_id = max(max_id, v)
            pairs.append((u, v))
    return build_graph(max_id + 1, pairs)


def from_networkx(nx_graph) -> CSRGraph:
    """Convert a ``networkx.Graph`` with integer labels ``0..n-1``.

    Only used in tests/examples; networkx is an optional dependency so the
    import happens at call time.
    """
    n = nx_graph.number_of_nodes()
    nodes = sorted(nx_graph.nodes())
    if nodes and (nodes[0] != 0 or nodes[-1] != n - 1):
        raise GraphFormatError("networkx graph must be labelled 0..n-1")
    edges = np.asarray([(u, v) for u, v in nx_graph.edges()], dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    return from_edge_array(n, edges)
