"""Immutable undirected graph in compressed sparse row (CSR) form.

Design notes
------------
* Vertices are the integers ``0 .. n-1``.  The paper numbers vertices from 1
  and uses 0 as the "no lowest parent" sentinel; we use 0-based ids and
  ``-1`` as the sentinel throughout the library.
* The structure is *symmetric*: each undirected edge ``{u, v}`` appears as
  both ``(u, v)`` and ``(v, u)`` in ``indices``.  ``num_edges`` reports the
  undirected count.
* ``sorted_adjacency`` records whether every adjacency slice is strictly
  increasing.  The paper's "Opt" variant requires sorted lists (finds the
  next lowest parent in O(1) amortised); the "Unopt" variant deliberately
  uses unsorted lists.  :meth:`CSRGraph.shuffled` produces an equivalent
  graph with randomly permuted adjacency slices for Unopt experiments.
* Arrays are frozen (``writeable = False``) — every algorithm treats the
  graph as read-only shared state, exactly as the multithreaded algorithm
  requires.
* A graph may optionally carry **per-edge weights** for the weighted
  extraction engine (:mod:`repro.core.weighted`): an arc-aligned float
  array (one entry per stored directed arc, symmetric across the two arcs
  of each undirected edge).  Weights ride along through
  :meth:`CSRGraph.with_sorted_adjacency` / :meth:`CSRGraph.shuffled`
  (the permutation is applied to both arrays) but are *not* part of graph
  identity (``__eq__`` compares edge sets only).  Construct weighted
  graphs through :func:`repro.graph.weights.attach_edge_weights`, which
  validates symmetry and finiteness.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CSRGraph"]


class CSRGraph:
    """Undirected graph stored as symmetric CSR arrays.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; adjacency of vertex ``v`` is
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int32`` or ``int64`` array of neighbor ids (each undirected edge
        present in both directions).
    sorted_adjacency:
        Declare whether each adjacency slice is strictly increasing.  When
        ``validate=True`` the declaration is checked.
    validate:
        Run full structural validation (symmetry is *not* checked here — it
        is checked by the builder which is the normal entry point; direct
        constructor users can call :meth:`validate_symmetry`).
    """

    __slots__ = ("indptr", "indices", "sorted_adjacency", "_degrees", "_arc_weights")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        sorted_adjacency: bool,
        validate: bool = True,
        arc_weights: np.ndarray | None = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices)
        if indices.dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            indices = indices.astype(np.int64)
        if validate:
            self._validate(indptr, indices, sorted_adjacency)
        if arc_weights is not None:
            arc_weights = np.ascontiguousarray(arc_weights, dtype=np.float64)
            if arc_weights.shape != indices.shape:
                raise GraphFormatError(
                    f"arc_weights must align with indices: expected shape "
                    f"{indices.shape}, got {arc_weights.shape}"
                )
            if arc_weights.size and not np.all(np.isfinite(arc_weights)):
                raise GraphFormatError("edge weights must be finite (no NaN/inf)")
        self.indptr = indptr
        self.indices = indices
        self.sorted_adjacency = bool(sorted_adjacency)
        self._degrees = np.diff(indptr)
        self._arc_weights = arc_weights
        for arr in (self.indptr, self.indices, self._degrees):
            arr.setflags(write=False)
        if self._arc_weights is not None:
            self._arc_weights.setflags(write=False)

    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray, sorted_adjacency: bool) -> None:
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n+1 (n >= 0)")
        if indptr[0] != 0:
            raise GraphFormatError(f"indptr[0] must be 0, got {indptr[0]}")
        if indptr[-1] != indices.size:
            raise GraphFormatError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise GraphFormatError(
                    f"indices must lie in [0, {n - 1}], got range "
                    f"[{indices.min()}, {indices.max()}]"
                )
        if sorted_adjacency:
            for v in range(n):
                row = indices[indptr[v]:indptr[v + 1]]
                if row.size > 1 and not np.all(row[1:] > row[:-1]):
                    raise GraphFormatError(
                        f"adjacency of vertex {v} is not strictly increasing "
                        "but sorted_adjacency=True"
                    )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (half the stored directed arcs)."""
        return self.indices.size // 2

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (``2 * num_edges``)."""
        return self.indices.size

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._degrees[v])

    def degrees(self) -> np.ndarray:
        """Read-only array of all vertex degrees."""
        return self._degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the adjacency slice of ``v``."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self._degrees.max(initial=0))

    # ------------------------------------------------------------------
    # Edge weights (optional; attached via repro.graph.weights)
    # ------------------------------------------------------------------
    @property
    def has_weights(self) -> bool:
        """Whether this graph carries per-edge weights."""
        return self._arc_weights is not None

    @property
    def arc_weights(self) -> np.ndarray | None:
        """Arc-aligned weight array (``None`` for unweighted graphs).

        ``arc_weights[i]`` is the weight of the undirected edge stored as
        arc ``indices[i]``; the two arcs of an edge carry equal weight.
        """
        return self._arc_weights

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` of ``v`` (weighted graphs)."""
        if self._arc_weights is None:
            raise GraphFormatError("graph carries no edge weights")
        return self._arc_weights[self.indptr[v]:self.indptr[v + 1]]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` (GraphFormatError on non-edges /
        unweighted graphs)."""
        if self._arc_weights is None:
            raise GraphFormatError("graph carries no edge weights")
        row = self.neighbors(u)
        hits = np.flatnonzero(row == v)
        if hits.size == 0:
            raise GraphFormatError(f"({u}, {v}) is not an edge")
        return float(self._arc_weights[self.indptr[u] + hits[0]])

    def edge_weight_rows(self) -> np.ndarray:
        """Per-edge weights aligned with :meth:`edge_array` rows."""
        if self._arc_weights is None:
            raise GraphFormatError("graph carries no edge weights")
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=self.indices.dtype), self._degrees)
        mask = src < self.indices
        return self._arc_weights[mask]

    @property
    def total_weight(self) -> float:
        """Sum of all undirected edge weights (0.0 for unweighted graphs
        with no edges; edge count for unweighted graphs, by the uniform
        weight-1 convention)."""
        if self._arc_weights is None:
            return float(self.num_edges)
        return float(self._arc_weights.sum()) / 2.0

    def without_weights(self) -> "CSRGraph":
        """An equivalent unweighted graph sharing the CSR arrays."""
        if self._arc_weights is None:
            return self
        return CSRGraph(
            self.indptr,
            self.indices,
            sorted_adjacency=self.sorted_adjacency,
            validate=False,
        )

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership test.

        Binary search when adjacency is sorted, linear scan otherwise —
        mirroring the paper's Opt/Unopt cost asymmetry.
        """
        row = self.neighbors(u)
        if row.size == 0:
            return False
        if self.sorted_adjacency:
            pos = int(np.searchsorted(row, v))
            return pos < row.size and int(row[pos]) == v
        return bool(np.any(row == v))

    # ------------------------------------------------------------------
    # Edge views
    # ------------------------------------------------------------------
    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=self.indices.dtype), self._degrees)
        mask = src < self.indices
        return np.column_stack((src[mask], self.indices[mask]))

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield undirected edges as ``(u, v)`` tuples with ``u < v``."""
        for u, v in self.edge_array():
            yield int(u), int(v)

    def edge_set(self) -> set[tuple[int, int]]:
        """Set of undirected edges as ``(min, max)`` tuples."""
        return {(int(u), int(v)) for u, v in self.edge_array()}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_sorted_adjacency(self) -> "CSRGraph":
        """Return an equivalent graph whose adjacency slices are sorted.

        This is the preprocessing step of the paper's *optimized* variant;
        the paper excludes its cost from reported run times, and the
        experiment harness does the same.
        """
        if self.sorted_adjacency:
            return self
        indices = self.indices.copy()
        weights = None if self._arc_weights is None else self._arc_weights.copy()
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            if weights is None:
                indices[lo:hi] = np.sort(indices[lo:hi])
            else:
                order = np.argsort(indices[lo:hi], kind="stable")
                indices[lo:hi] = indices[lo:hi][order]
                weights[lo:hi] = weights[lo:hi][order]
        return CSRGraph(
            self.indptr,
            indices,
            sorted_adjacency=True,
            validate=False,
            arc_weights=weights,
        )

    def shuffled(self, rng: np.random.Generator) -> "CSRGraph":
        """Return an equivalent graph with randomly permuted adjacency slices.

        Used to produce inputs for the *unoptimized* variant so that its
        linear next-parent scans are exercised on genuinely unordered lists.
        """
        indices = self.indices.copy()
        weights = None if self._arc_weights is None else self._arc_weights.copy()
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            perm = rng.permutation(hi - lo)
            indices[lo:hi] = indices[lo:hi][perm]
            if weights is not None:
                weights[lo:hi] = weights[lo:hi][perm]
        return CSRGraph(
            self.indptr,
            indices,
            sorted_adjacency=False,
            validate=False,
            arc_weights=weights,
        )

    def validate_symmetry(self) -> None:
        """Raise :class:`GraphFormatError` unless the arc set is symmetric
        and free of self-loops and duplicates."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
        dst = self.indices.astype(np.int64)
        if np.any(src == dst):
            raise GraphFormatError("graph contains self-loops")
        fwd = src * n + dst
        rev = dst * n + src
        fwd_sorted = np.sort(fwd)
        if fwd_sorted.size and np.any(fwd_sorted[1:] == fwd_sorted[:-1]):
            raise GraphFormatError("graph contains duplicate arcs")
        if not np.array_equal(fwd_sorted, np.sort(rev)):
            raise GraphFormatError("arc set is not symmetric")

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"sorted={self.sorted_adjacency})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex count and same *edge set*.

        Adjacency order is not part of graph identity (Opt/Unopt inputs of
        the same graph compare equal).
        """
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        if self.num_edges != other.num_edges:
            return False
        return self.edge_set() == other.edge_set()

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)
