"""Graph substrate: compressed (CSR) storage, builders, generators, BFS, I/O.

The paper stores graphs in "a compressed storage format ... where the
neighbors of each vertex are stored contiguously" (Section V); this package
is that substrate.  :class:`repro.graph.CSRGraph` is the single graph type
used by every algorithm in the library.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builder import (
    build_graph,
    from_edge_array,
    from_adjacency_dict,
    from_networkx,
    compact_labels,
)
from repro.graph.io import (
    load_graph,
    save_graph,
    detect_format,
    read_snap,
    FORMATS,
)
from repro.graph.ops import (
    edge_subgraph,
    induced_subgraph,
    relabel,
    union_edges,
    complement,
    degree_histogram,
)
from repro.graph.bfs import bfs_levels, bfs_order, connected_components, bfs_renumber
from repro.graph.weights import (
    attach_edge_weights,
    uniform_weights,
    edge_weight_mapping,
    retained_weight,
)

__all__ = [
    "CSRGraph",
    "build_graph",
    "from_edge_array",
    "from_adjacency_dict",
    "from_networkx",
    "compact_labels",
    "load_graph",
    "save_graph",
    "detect_format",
    "read_snap",
    "FORMATS",
    "edge_subgraph",
    "induced_subgraph",
    "relabel",
    "union_edges",
    "complement",
    "degree_histogram",
    "bfs_levels",
    "bfs_order",
    "connected_components",
    "bfs_renumber",
    "attach_edge_weights",
    "uniform_weights",
    "edge_weight_mapping",
    "retained_weight",
]
