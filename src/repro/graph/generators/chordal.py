"""Generators of graphs that are chordal *by construction*.

These give the test suite ground truth that is independent of both the
recognition machinery and the extraction algorithm:

* :func:`ktree` / :func:`partial_ktree` — k-trees are the maximal graphs
  of treewidth k and are chordal by construction; partial k-trees (random
  edge subsets) are the standard bounded-treewidth workload.
* :func:`random_chordal` — random chordal graph via a reversed elimination
  construction: each vertex connects to a random clique-in-progress subset
  of its predecessors, which makes the natural order a perfect elimination
  ordering by construction.
* :func:`interval_graph` — intersection graph of random intervals; interval
  graphs are a classical chordal subclass (used by the ordering examples).
* :func:`chordal_mutation_stream` — seeded edge-mutation stream that keeps
  the graph chordal after every event (Şeker-style subtree-of-a-tree
  dynamics), the ground-truth workload for incremental re-extraction.
* :func:`random_mutation_stream` — seeded insert/delete toggle stream over
  an arbitrary seed graph (no chordality guarantee), the general dynamic
  workload for :class:`repro.core.incremental.IncrementalExtractor`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "ktree",
    "partial_ktree",
    "random_chordal",
    "interval_graph",
    "chordal_mutation_stream",
    "random_mutation_stream",
]


def ktree(n: int, k: int, seed=None) -> CSRGraph:
    """Random k-tree on ``n`` vertices (chordal, treewidth exactly k).

    Construction: start from a (k+1)-clique; every further vertex picks a
    uniformly random existing k-clique and connects to all of it.

    Requires ``n >= k + 1``.
    """
    check_positive("k", k)
    if n < k + 1:
        raise ValueError(f"k-tree requires n >= k+1, got n={n}, k={k}")
    rng = make_rng(seed)
    edges: list[tuple[int, int]] = []
    # Track the k-cliques available for attachment.
    base = list(range(k + 1))
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            edges.append((base[i], base[j]))
    cliques: list[tuple[int, ...]] = [
        tuple(c for idx, c in enumerate(base) if idx != drop) for drop in range(k + 1)
    ]
    for v in range(k + 1, n):
        attach = cliques[int(rng.integers(len(cliques)))]
        for u in attach:
            edges.append((u, v))
        # New attachable k-cliques: attach with any one member swapped for v
        # (attach itself also stays attachable).
        for drop in range(k):
            cliques.append(
                tuple(c for idx, c in enumerate(attach) if idx != drop) + (v,)
            )
    return from_edge_array(n, np.asarray(edges, dtype=np.int64))


def partial_ktree(n: int, k: int, keep: float, seed=None) -> CSRGraph:
    """Random partial k-tree: a k-tree with each edge kept with prob ``keep``.

    Not necessarily chordal, but treewidth <= k — the standard
    bounded-treewidth workload for ordering experiments.
    """
    check_in_range("keep", keep, 0.0, 1.0)
    rng = make_rng(seed)
    full = ktree(n, k, seed=rng)
    edges = full.edge_array()
    mask = rng.random(edges.shape[0]) < keep
    return from_edge_array(n, edges[mask])


def random_chordal(n: int, density: float = 0.3, seed=None) -> CSRGraph:
    """Random chordal graph with the natural order as its PEO.

    Vertex ``v`` (in increasing order) connects to a clique among its
    predecessors: a random earlier vertex ``r`` plus a random subset of
    ``r``'s earlier *chordal* neighborhood — which is a clique by
    induction, so ``v``'s earlier neighborhood is a clique and the natural
    order is a perfect elimination ordering (read backwards).

    ``density`` controls how much of the eligible clique each vertex
    adopts; 0 yields a forest-like graph, 1 yields near-k-trees.
    """
    check_in_range("density", density, 0.0, 1.0)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    nbrs: list[set[int]] = [set() for _ in range(n)]
    edges: list[tuple[int, int]] = []
    for v in range(1, n):
        r = int(rng.integers(v))
        # candidates: r plus r's neighbors below v form a clique ∪ {r}? —
        # r's *earlier* closed neighborhood restricted to r's clique: take
        # r's earlier neighbors, which form a clique with r by induction.
        clique = sorted(u for u in nbrs[r] if u < r) + [r]
        chosen = {r}
        for u in clique[:-1]:
            if rng.random() < density:
                chosen.add(u)
        for u in chosen:
            edges.append((u, v))
            nbrs[v].add(u)
            nbrs[u].add(v)
    arr = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), np.int64)
    return from_edge_array(n, arr)


def chordal_mutation_stream(
    n: int,
    num_events: int,
    *,
    tree_nodes: int | None = None,
    seed=None,
) -> tuple[CSRGraph, list[list[tuple[str, int, int]]]]:
    """Seeded edge-mutation stream with ground-truth chordality.

    Construction (Şeker-style subtree dynamics): each of the ``n``
    vertices owns a connected subtree ``S_v`` of a shared host tree ``T``
    on ``tree_nodes`` nodes, and the graph is the intersection graph
    ``uv ∈ E ⇔ S_u ∩ S_v ≠ ∅``.  By the subtree characterization of
    chordal graphs (Gavril / Buneman), the graph is chordal at *every*
    event boundary.  Each event grows or shrinks one vertex's subtree by
    one tree node and emits the edge mutations that intersection change
    implies, as a list of ``("insert" | "delete", u, v)`` triples.

    Returns ``(initial_graph, events)`` where ``events`` has
    ``num_events`` entries (an entry may be empty when the touched tree
    node changes no intersections).  Because the answer on a chordal
    graph is unique — the only maximal chordal subgraph is the graph
    itself — these streams give incremental extraction a bit-exact
    oracle: after every event the retained edge set must equal the full
    edge set.

    Fully deterministic for a given ``seed``.
    """
    check_positive("n", n)
    if num_events < 0:
        raise ValueError(f"num_events must be >= 0, got {num_events}")
    if tree_nodes is None:
        tree_nodes = max(2, n)
    check_positive("tree_nodes", tree_nodes)
    rng = make_rng(seed)
    # Host tree: random recursive tree.
    tree_adj: list[set[int]] = [set() for _ in range(tree_nodes)]
    for node in range(1, tree_nodes):
        parent = int(rng.integers(node))
        tree_adj[node].add(parent)
        tree_adj[parent].add(node)
    # Each vertex starts owning a single random tree node.
    subtree: list[set[int]] = []
    occupancy: list[set[int]] = [set() for _ in range(tree_nodes)]
    share: dict[tuple[int, int], int] = {}
    for v in range(n):
        node = int(rng.integers(tree_nodes))
        subtree.append({node})
        for w in occupancy[node]:
            _bump_share(share, v, w, +1)
        occupancy[node].add(v)
    initial = from_edge_array(
        n,
        np.asarray(sorted(share), dtype=np.int64)
        if share
        else np.empty((0, 2), np.int64),
    )

    def grow(v: int) -> list[tuple[str, int, int]]:
        frontier = sorted(
            {nbr for node in subtree[v] for nbr in tree_adj[node]} - subtree[v]
        )
        if not frontier:
            return []
        node = frontier[int(rng.integers(len(frontier)))]
        ops = []
        for w in sorted(occupancy[node]):
            if w != v and _bump_share(share, v, w, +1) == 1:
                ops.append(("insert", min(v, w), max(v, w)))
        subtree[v].add(node)
        occupancy[node].add(v)
        return ops

    def shrink(v: int) -> list[tuple[str, int, int]]:
        if len(subtree[v]) <= 1:
            return []
        # Removable nodes: leaves of the induced subtree keep it connected.
        leaves = sorted(
            node
            for node in subtree[v]
            if len(tree_adj[node] & subtree[v]) <= 1
        )
        if not leaves:
            return []
        node = leaves[int(rng.integers(len(leaves)))]
        subtree[v].discard(node)
        occupancy[node].discard(v)
        ops = []
        for w in sorted(occupancy[node]):
            if w != v and _bump_share(share, v, w, -1) == 0:
                ops.append(("delete", min(v, w), max(v, w)))
        return ops

    events: list[list[tuple[str, int, int]]] = []
    for _ in range(num_events):
        v = int(rng.integers(n))
        if rng.random() < 0.5:
            ops = grow(v) or shrink(v)
        else:
            ops = shrink(v) or grow(v)
        events.append(ops)
    return initial, events


def _bump_share(
    share: dict[tuple[int, int], int], v: int, w: int, delta: int
) -> int:
    """Adjust the subtree-overlap count of pair ``(v, w)``; returns the
    new count (the pair is an edge iff the count is positive)."""
    key = (v, w) if v < w else (w, v)
    count = share.get(key, 0) + delta
    if count <= 0:
        share.pop(key, None)
        return 0
    share[key] = count
    return count


def random_mutation_stream(
    graph: CSRGraph,
    num_mutations: int,
    *,
    insert_ratio: float = 0.7,
    seed=None,
) -> list[tuple[str, int, int]]:
    """Seeded insert/delete toggle stream over an arbitrary seed graph.

    Each mutation is valid against the evolving graph (inserts pick a
    current non-edge, deletes a current edge); ``insert_ratio`` is the
    probability a mutation is an insert when both moves are possible.
    No chordality guarantee — this is the general dynamic-graph workload
    for :class:`repro.core.incremental.IncrementalExtractor` (pair with
    :func:`chordal_mutation_stream` for a ground-truth oracle).

    Returns ``num_mutations`` triples ``("insert" | "delete", u, v)``,
    deterministic for a given ``(graph, seed)``.
    """
    check_in_range("insert_ratio", insert_ratio, 0.0, 1.0)
    if num_mutations < 0:
        raise ValueError(f"num_mutations must be >= 0, got {num_mutations}")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("mutation streams need at least 2 vertices")
    rng = make_rng(seed)
    present = set(graph.edge_set())
    edge_list = sorted(present)
    max_edges = n * (n - 1) // 2
    ops: list[tuple[str, int, int]] = []
    for _ in range(num_mutations):
        do_insert = (not edge_list) or rng.random() < insert_ratio
        if len(present) == max_edges:
            do_insert = False
        if do_insert:
            while True:
                u = int(rng.integers(n))
                v = int(rng.integers(n))
                if u == v:
                    continue
                edge = (u, v) if u < v else (v, u)
                if edge not in present:
                    break
            present.add(edge)
            edge_list.append(edge)
            ops.append(("insert", edge[0], edge[1]))
        else:
            i = int(rng.integers(len(edge_list)))
            edge = edge_list[i]
            edge_list[i] = edge_list[-1]
            edge_list.pop()
            present.discard(edge)
            ops.append(("delete", edge[0], edge[1]))
    return ops


def interval_graph(n: int, max_length: float = 0.3, seed=None) -> CSRGraph:
    """Intersection graph of ``n`` random intervals in [0, 1].

    Interval graphs are chordal (a classical subclass); interval lengths
    are uniform in ``(0, max_length]``.
    """
    check_positive("max_length", max_length)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    starts = rng.random(n)
    lengths = rng.random(n) * max_length
    ends = starts + lengths
    order = np.argsort(starts)
    edges: list[tuple[int, int]] = []
    # sweep: compare each interval with successors until starts pass its end
    for idx, i in enumerate(order):
        for j in order[idx + 1:]:
            if starts[j] > ends[i]:
                break
            edges.append((int(i), int(j)))
    arr = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), np.int64)
    return from_edge_array(n, arr)
