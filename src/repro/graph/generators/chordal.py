"""Generators of graphs that are chordal *by construction*.

These give the test suite ground truth that is independent of both the
recognition machinery and the extraction algorithm:

* :func:`ktree` / :func:`partial_ktree` — k-trees are the maximal graphs
  of treewidth k and are chordal by construction; partial k-trees (random
  edge subsets) are the standard bounded-treewidth workload.
* :func:`random_chordal` — random chordal graph via a reversed elimination
  construction: each vertex connects to a random clique-in-progress subset
  of its predecessors, which makes the natural order a perfect elimination
  ordering by construction.
* :func:`interval_graph` — intersection graph of random intervals; interval
  graphs are a classical chordal subclass (used by the ordering examples).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_positive

__all__ = ["ktree", "partial_ktree", "random_chordal", "interval_graph"]


def ktree(n: int, k: int, seed=None) -> CSRGraph:
    """Random k-tree on ``n`` vertices (chordal, treewidth exactly k).

    Construction: start from a (k+1)-clique; every further vertex picks a
    uniformly random existing k-clique and connects to all of it.

    Requires ``n >= k + 1``.
    """
    check_positive("k", k)
    if n < k + 1:
        raise ValueError(f"k-tree requires n >= k+1, got n={n}, k={k}")
    rng = make_rng(seed)
    edges: list[tuple[int, int]] = []
    # Track the k-cliques available for attachment.
    base = list(range(k + 1))
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            edges.append((base[i], base[j]))
    cliques: list[tuple[int, ...]] = [
        tuple(c for idx, c in enumerate(base) if idx != drop) for drop in range(k + 1)
    ]
    for v in range(k + 1, n):
        attach = cliques[int(rng.integers(len(cliques)))]
        for u in attach:
            edges.append((u, v))
        # New attachable k-cliques: attach with any one member swapped for v
        # (attach itself also stays attachable).
        for drop in range(k):
            cliques.append(
                tuple(c for idx, c in enumerate(attach) if idx != drop) + (v,)
            )
    return from_edge_array(n, np.asarray(edges, dtype=np.int64))


def partial_ktree(n: int, k: int, keep: float, seed=None) -> CSRGraph:
    """Random partial k-tree: a k-tree with each edge kept with prob ``keep``.

    Not necessarily chordal, but treewidth <= k — the standard
    bounded-treewidth workload for ordering experiments.
    """
    check_in_range("keep", keep, 0.0, 1.0)
    rng = make_rng(seed)
    full = ktree(n, k, seed=rng)
    edges = full.edge_array()
    mask = rng.random(edges.shape[0]) < keep
    return from_edge_array(n, edges[mask])


def random_chordal(n: int, density: float = 0.3, seed=None) -> CSRGraph:
    """Random chordal graph with the natural order as its PEO.

    Vertex ``v`` (in increasing order) connects to a clique among its
    predecessors: a random earlier vertex ``r`` plus a random subset of
    ``r``'s earlier *chordal* neighborhood — which is a clique by
    induction, so ``v``'s earlier neighborhood is a clique and the natural
    order is a perfect elimination ordering (read backwards).

    ``density`` controls how much of the eligible clique each vertex
    adopts; 0 yields a forest-like graph, 1 yields near-k-trees.
    """
    check_in_range("density", density, 0.0, 1.0)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    nbrs: list[set[int]] = [set() for _ in range(n)]
    edges: list[tuple[int, int]] = []
    for v in range(1, n):
        r = int(rng.integers(v))
        # candidates: r plus r's neighbors below v form a clique ∪ {r}? —
        # r's *earlier* closed neighborhood restricted to r's clique: take
        # r's earlier neighbors, which form a clique with r by induction.
        clique = sorted(u for u in nbrs[r] if u < r) + [r]
        chosen = {r}
        for u in clique[:-1]:
            if rng.random() < density:
                chosen.add(u)
        for u in chosen:
            edges.append((u, v))
            nbrs[v].add(u)
            nbrs[u].add(v)
    arr = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), np.int64)
    return from_edge_array(n, arr)


def interval_graph(n: int, max_length: float = 0.3, seed=None) -> CSRGraph:
    """Intersection graph of ``n`` random intervals in [0, 1].

    Interval graphs are chordal (a classical subclass); interval lengths
    are uniform in ``(0, max_length]``.
    """
    check_positive("max_length", max_length)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    starts = rng.random(n)
    lengths = rng.random(n) * max_length
    ends = starts + lengths
    order = np.argsort(starts)
    edges: list[tuple[int, int]] = []
    # sweep: compare each interval with successors until starts pass its end
    for idx, i in enumerate(order):
        for j in order[idx + 1:]:
            if starts[j] > ends[i]:
                break
            edges.append((int(i), int(j)))
    arr = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), np.int64)
    return from_edge_array(n, arr)
