"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos 2004).

This reproduces the paper's synthetic test suite (Section IV-B):

* ``RMAT-ER`` — probabilities ``(0.25, 0.25, 0.25, 0.25)``; Erdős–Rényi-like
  with a normal degree distribution.
* ``RMAT-G``  — ``(0.45, 0.15, 0.15, 0.25)``; scale-free small-world with
  moderate degree skew and local subcommunities.
* ``RMAT-B``  — ``(0.55, 0.15, 0.15, 0.15)``; much wider degree distribution
  and denser communities (the hardest input in the paper).

The paper sets ``|V| = 2^SCALE`` and ``|E| = 8 |V|`` (edge factor 8).  As in
the paper, duplicate edges and self-loops produced by the recursive process
are discarded, so the final edge count lands slightly below
``edge_factor * 2^scale`` (compare Table I: RMAT-B(24) has 133.7M of a
nominal 134.2M edges).

The generation loop is fully vectorised: one pass per of the ``scale`` bit
levels, drawing the quadrant for *all* edges at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_probability_vector

__all__ = [
    "RMATParams",
    "rmat_edges",
    "rmat_graph",
    "rmat_er",
    "rmat_g",
    "rmat_b",
    "RMAT_ER_PROBS",
    "RMAT_G_PROBS",
    "RMAT_B_PROBS",
]

RMAT_ER_PROBS: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
RMAT_G_PROBS: tuple[float, float, float, float] = (0.45, 0.15, 0.15, 0.25)
RMAT_B_PROBS: tuple[float, float, float, float] = (0.55, 0.15, 0.15, 0.15)

#: Paper's edge factor: |E| = 8 * |V| (Section IV-B).
PAPER_EDGE_FACTOR = 8


@dataclass(frozen=True)
class RMATParams:
    """Parameters of one R-MAT instance.

    Attributes
    ----------
    scale:
        ``|V| = 2**scale``.
    edge_factor:
        Nominal ``|E| = edge_factor * |V|`` before dedup.
    probs:
        Quadrant probabilities ``(a, b, c, d)`` summing to 1 — ``a`` is the
        top-left (low ids to low ids) quadrant.
    name:
        Display name used in tables (e.g. ``"RMAT-B(12)"``).
    """

    scale: int
    edge_factor: int = PAPER_EDGE_FACTOR
    probs: tuple[float, float, float, float] = RMAT_ER_PROBS
    name: str = field(default="RMAT", compare=False)

    def __post_init__(self) -> None:
        if self.scale < 0 or self.scale > 30:
            raise ValueError(f"scale must be in [0, 30], got {self.scale}")
        if self.edge_factor < 1:
            raise ValueError(f"edge_factor must be >= 1, got {self.edge_factor}")
        check_probability_vector("probs", self.probs, length=4)

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def nominal_edges(self) -> int:
        return self.edge_factor * self.num_vertices

    def label(self) -> str:
        return f"{self.name}({self.scale})"


def rmat_edges(params: RMATParams, rng: np.random.Generator) -> np.ndarray:
    """Raw ``(nominal_edges, 2)`` endpoint array (duplicates/loops included).

    Each edge picks one of the four quadrants independently at each of the
    ``scale`` bit levels; quadrant ``(r, c)`` contributes bit ``r`` to the
    source id and bit ``c`` to the destination id.
    """
    m = params.nominal_edges
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    a, b, c, d = params.probs
    # Cumulative thresholds over quadrants (a | b | c | d).
    t1, t2, t3 = a, a + b, a + b + c
    for _level in range(params.scale):
        r = rng.random(m)
        quad_b = (r >= t1) & (r < t2)
        quad_c = (r >= t2) & (r < t3)
        quad_d = r >= t3
        row_bit = (quad_c | quad_d).astype(np.int64)
        col_bit = (quad_b | quad_d).astype(np.int64)
        u = (u << 1) | row_bit
        v = (v << 1) | col_bit
    return np.column_stack((u, v))


def rmat_graph(params: RMATParams, seed=None) -> CSRGraph:
    """Generate a simple undirected R-MAT graph (loops/duplicates dropped)."""
    rng = make_rng(seed)
    edges = rmat_edges(params, rng)
    return from_edge_array(params.num_vertices, edges)


def rmat_er(scale: int, seed=None, edge_factor: int = PAPER_EDGE_FACTOR) -> CSRGraph:
    """RMAT-ER instance at the given scale (paper preset)."""
    return rmat_graph(RMATParams(scale, edge_factor, RMAT_ER_PROBS, "RMAT-ER"), seed)


def rmat_g(scale: int, seed=None, edge_factor: int = PAPER_EDGE_FACTOR) -> CSRGraph:
    """RMAT-G instance at the given scale (paper preset)."""
    return rmat_graph(RMATParams(scale, edge_factor, RMAT_G_PROBS, "RMAT-G"), seed)


def rmat_b(scale: int, seed=None, edge_factor: int = PAPER_EDGE_FACTOR) -> CSRGraph:
    """RMAT-B instance at the given scale (paper preset)."""
    return rmat_graph(RMATParams(scale, edge_factor, RMAT_B_PROBS, "RMAT-B"), seed)
