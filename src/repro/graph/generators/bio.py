"""Synthetic gene-correlation networks.

**Substitution note (see DESIGN.md §3).**  The paper builds its biological
networks from NCBI GEO microarray datasets (GSE5140: creatine-treated vs
untreated mouse hypothalamus; GSE17072: control vs non-familial breast
cancer tissue) by connecting gene pairs with Pearson correlation
``0.95 <= rho <= 1.00``.  GEO data is unavailable offline, so this module
provides two faithful stand-ins:

1. :func:`synthetic_expression` + :func:`correlation_network` — the *exact
   pipeline* the paper describes, run on synthetic expression matrices with
   planted co-expressed gene modules.  This exercises the same code path
   (all-pairs Pearson, thresholding) at a few thousand genes.
2. :func:`bio_network` — a direct structural generator that reproduces the
   published *network statistics* of the four GEO graphs at full
   45k-49k vertex scale, cheaply:

   * Table I sizes (vertices, edges, max degree driven by hubs);
   * hubs unlikely to be adjacent to hubs ("assortative" in the paper's
     usage) — designated hubs attach to module members only;
   * high clustering at low degree, decaying with degree (Figure 2c) —
     from a tier of *small dense* co-expression modules;
   * a small chordal-edge fraction and ~10 extraction iterations
     (Section V) — from a tier of *large sparse* modules carrying most of
     the edge mass (sparse quasi-random modules are full of chordless
     cycles, unlike near-cliques);
   * a wide shortest-path distribution (Figure 3c) — from degree-1
     satellite probes and a long chained module backbone.

Both stand-ins are used by the experiment harness; the parameter presets
``GSE5140_CRT``, ``GSE5140_UNT``, ``GSE17072_CTL``, ``GSE17072_NON`` carry
the paper's published vertex/edge counts and max degrees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "synthetic_expression",
    "correlation_network",
    "BioNetworkParams",
    "bio_network",
    "GSE5140_CRT",
    "GSE5140_UNT",
    "GSE17072_CTL",
    "GSE17072_NON",
]


# ----------------------------------------------------------------------
# Pipeline 1: expression matrix -> Pearson correlation -> threshold graph
# ----------------------------------------------------------------------

def synthetic_expression(
    num_genes: int,
    num_samples: int,
    num_modules: int,
    *,
    module_strength: float = 0.97,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic microarray expression with planted co-expressed modules.

    Genes are assigned to ``num_modules`` latent modules (sizes Zipf-like);
    gene ``g`` in module ``k`` is ``strength * factor_k + noise``.  A tail of
    unassigned background genes is pure noise.  Returns
    ``(expression[num_genes, num_samples], module_of_gene)`` where
    background genes have module id ``-1``.
    """
    check_positive("num_genes", num_genes)
    check_positive("num_samples", num_samples)
    check_positive("num_modules", num_modules)
    check_in_range("module_strength", module_strength, 0.0, 1.0)
    rng = make_rng(seed)

    # Zipf-ish module sizes over ~70% of genes; the rest is background.
    weights = 1.0 / np.arange(1, num_modules + 1, dtype=np.float64)
    weights /= weights.sum()
    assignable = int(0.7 * num_genes)
    sizes = rng.multinomial(assignable, weights)

    module_of_gene = np.full(num_genes, -1, dtype=np.int64)
    gene_order = rng.permutation(num_genes)
    pos = 0
    for k, s in enumerate(sizes):
        module_of_gene[gene_order[pos:pos + s]] = k
        pos += s

    factors = rng.standard_normal((num_modules, num_samples))
    noise = rng.standard_normal((num_genes, num_samples))
    expr = np.empty((num_genes, num_samples), dtype=np.float64)
    s = module_strength
    noise_scale = np.sqrt(1.0 - s * s)
    for g in range(num_genes):
        k = module_of_gene[g]
        if k < 0:
            expr[g] = noise[g]
        else:
            # Half the module genes are anti-correlated with the factor,
            # as down-regulated genes are in real co-expression data.
            sign = 1.0 if rng.random() < 0.5 else -1.0
            expr[g] = sign * s * factors[k] + noise_scale * noise[g]
    return expr, module_of_gene


def correlation_network(
    expression: np.ndarray,
    *,
    threshold: float = 0.95,
    block_size: int = 1024,
) -> CSRGraph:
    """Gene-correlation graph: connect pairs with ``|Pearson rho| >= threshold``.

    This is the construction the paper uses ("genes with high correlations
    (0.95 <= rho <= 1.00) were connected to form the network").  We take the
    absolute correlation so anti-correlated genes within a module also link,
    which is standard for co-expression networks.

    Computed blockwise so a 10k-gene matrix never materialises the full
    dense correlation matrix at once.
    """
    check_in_range("threshold", threshold, 0.0, 1.0)
    expr = np.asarray(expression, dtype=np.float64)
    if expr.ndim != 2:
        raise ValueError(f"expression must be 2-D (genes x samples), got {expr.shape}")
    g, _ = expr.shape
    # Standardise rows; constant rows get zero std -> correlation undefined -> isolated.
    mean = expr.mean(axis=1, keepdims=True)
    std = expr.std(axis=1, keepdims=True)
    safe_std = np.where(std > 0, std, 1.0)
    z = (expr - mean) / safe_std
    z[std[:, 0] == 0] = 0.0
    nsamp = expr.shape[1]

    rows: list[np.ndarray] = []
    for start in range(0, g, block_size):
        stop = min(start + block_size, g)
        corr = z[start:stop] @ z.T / nsamp
        hits = np.abs(corr) >= threshold
        uu, vv = np.nonzero(hits)
        uu = uu + start
        mask = uu < vv  # upper triangle only, excludes self-correlation
        if mask.any():
            rows.append(np.column_stack((uu[mask], vv[mask])))
    edges = np.vstack(rows) if rows else np.empty((0, 2), dtype=np.int64)
    return from_edge_array(g, edges)


# ----------------------------------------------------------------------
# Pipeline 2: direct structural generator at GEO scale
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BioNetworkParams:
    """Structural parameters of a synthetic gene-correlation network.

    Two module tiers (see module docstring): *small dense* modules give
    the high-clustering low-degree population of Figure 2c, while *large
    sparse* modules carry most of the edge budget and keep the chordal
    fraction low.  Hubs sit degree-wise above module members and never
    attach to each other.
    """

    num_vertices: int
    num_edges: int
    name: str = "BIO"
    # small dense tier
    small_module_range: tuple[int, int] = (6, 20)
    small_module_density: float = 0.8
    small_tier_fraction: float = 0.30
    # large sparse tier
    large_module_range: tuple[int, int] = (80, 400)
    # hubs
    hub_fraction: float = 0.002
    hub_degree_min: int = 60
    hub_degree_max: int = 400
    # connectivity & satellites
    backbone_fraction: float = 0.02
    leaf_fraction: float = 0.10

    def __post_init__(self) -> None:
        check_positive("num_vertices", self.num_vertices)
        check_positive("num_edges", self.num_edges)
        for label, (lo, hi) in (
            ("small_module_range", self.small_module_range),
            ("large_module_range", self.large_module_range),
        ):
            if lo < 3 or hi < lo:
                raise ValueError(f"{label} must satisfy 3 <= lo <= hi, got ({lo}, {hi})")
        check_in_range("small_module_density", self.small_module_density, 0.01, 1.0)
        check_in_range("small_tier_fraction", self.small_tier_fraction, 0.0, 1.0)
        check_in_range("hub_fraction", self.hub_fraction, 0.0, 0.2)
        if self.hub_degree_max < self.hub_degree_min:
            raise ValueError("hub_degree_max must be >= hub_degree_min")
        check_in_range("backbone_fraction", self.backbone_fraction, 0.0, 1.0)
        check_in_range("leaf_fraction", self.leaf_fraction, 0.0, 0.9)

    def label(self) -> str:
        return self.name

    def scaled(self, fraction: float) -> "BioNetworkParams":
        """Proportionally scaled-down copy (for laptop-scale experiments).

        Counts scale linearly; module sizes and hub degrees scale
        sub-linearly so the structural hierarchy survives — large modules
        stay larger than small ones, and hub degrees stay above module
        degrees.
        """
        check_in_range("fraction", fraction, 1e-6, 1.0)
        if fraction == 1.0:
            return self
        soft = fraction ** 0.3
        gentle = fraction ** 0.2
        s_lo, s_hi = self.small_module_range
        l_lo, l_hi = self.large_module_range
        new_small = (max(4, int(s_lo * soft)), max(6, int(s_hi * soft)))
        module_pool = int(self.num_vertices * fraction * (1 - self.hub_fraction - self.leaf_fraction))
        large_cap = max(new_small[1] + 12, module_pool // 3)
        new_large = (
            min(max(new_small[1] + 6, int(l_lo * gentle)), max(new_small[1] + 6, large_cap - 6)),
            min(max(new_small[1] + 12, int(l_hi * gentle)), large_cap),
        )
        new_hub_min = max(30, int(self.hub_degree_min * gentle))
        new_hub_max = max(new_hub_min + 20, int(self.hub_degree_max * gentle))
        return replace(
            self,
            num_vertices=max(256, int(self.num_vertices * fraction)),
            num_edges=max(1024, int(self.num_edges * fraction)),
            name=f"{self.name}@{fraction:g}",
            small_module_range=new_small,
            large_module_range=new_large,
            hub_degree_min=new_hub_min,
            hub_degree_max=new_hub_max,
        )


#: Presets carrying the paper's published sizes (Table I).
GSE5140_CRT = BioNetworkParams(45023, 714628, name="GSE5140(CRT)", hub_degree_max=690)
GSE5140_UNT = BioNetworkParams(45020, 644651, name="GSE5140(UNT)", hub_degree_max=315)
GSE17072_CTL = BioNetworkParams(48803, 949094, name="GSE17072(CTL)", hub_degree_max=365)
GSE17072_NON = BioNetworkParams(48803, 1109553, name="GSE17072(NON)", hub_degree_max=463)


def _sample_sizes(lo: int, hi: int, budget: int, rng) -> list[np.ndarray] | np.ndarray:
    """Power-law(ish) sizes in [lo, hi] totalling ``budget`` vertices."""
    sizes: list[int] = []
    total = 0
    alpha = 1.8
    a1 = 1.0 - alpha
    while total < budget:
        u = rng.random()
        s = (lo ** a1 + u * (hi ** a1 - lo ** a1)) ** (1.0 / a1)
        s = int(np.clip(round(s), lo, hi))
        if budget - total < lo:
            if sizes:
                sizes[-1] += budget - total
            else:
                sizes.append(budget - total)
            total = budget
            break
        s = min(s, budget - total)
        sizes.append(s)
        total += s
    return np.asarray(sizes, dtype=np.int64)


def _er_module_edges(members: np.ndarray, p: float, rng) -> np.ndarray | None:
    """Erdős–Rényi edges among ``members`` with probability ``p``."""
    s = members.size
    if s < 2 or p <= 0:
        return None
    mask = np.triu(rng.random((s, s)) < p, k=1)
    uu, vv = np.nonzero(mask)
    if uu.size == 0:
        return None
    return np.column_stack((members[uu], members[vv]))


def bio_network(params: BioNetworkParams, seed=None) -> CSRGraph:
    """Generate a synthetic gene-correlation network per ``params``.

    Edge-budget split: degree-1 satellites and hub attachments come off
    the top; ~22% of the remainder goes to the small dense tier; the rest
    fills the large sparse tier (per-module density derived from its
    quota, floored/capped to stay sparse).  Modules are chained along a
    random backbone with a few shortcuts.
    """
    rng = make_rng(seed)
    n = params.num_vertices
    m_target = params.num_edges

    n_hubs = max(1, int(params.hub_fraction * n))
    n_leaves = int(params.leaf_fraction * n)
    n_module_vertices = n - n_hubs - n_leaves
    if n_module_vertices < params.small_module_range[0]:
        raise ValueError(
            f"parameters leave only {n_module_vertices} vertices for modules; "
            "reduce hub_fraction/leaf_fraction"
        )

    perm = rng.permutation(n)
    hub_ids = perm[:n_hubs]
    leaf_ids = perm[n_hubs:n_hubs + n_leaves]
    module_pool = perm[n_hubs + n_leaves:]

    # --- tier vertex allocation -----------------------------------------
    n_small = int(params.small_tier_fraction * n_module_vertices)
    small_sizes = _sample_sizes(*params.small_module_range, n_small, rng)
    large_sizes = _sample_sizes(
        *params.large_module_range, n_module_vertices - int(small_sizes.sum()), rng
    )
    modules: list[np.ndarray] = []
    pos = 0
    for s in list(small_sizes) + list(large_sizes):
        modules.append(module_pool[pos:pos + int(s)])
        pos += int(s)
    num_small = len(small_sizes)

    chunks: list[np.ndarray] = []

    # --- hub attachments --------------------------------------------------
    hub_lo = params.hub_degree_min
    hub_hi = max(params.hub_degree_max, hub_lo + 1)
    exps = rng.random(n_hubs)
    hub_degrees = (hub_lo * (hub_hi / hub_lo) ** exps).astype(np.int64)
    hub_edge_count = 0
    for hub, deg in zip(hub_ids, hub_degrees):
        deg = int(min(deg, module_pool.size))
        targets = rng.choice(module_pool, size=deg, replace=False)
        chunks.append(np.column_stack((np.full(deg, hub, dtype=np.int64), targets)))
        hub_edge_count += deg

    # --- budget for the module tiers --------------------------------------
    backbone_budget = max(len(modules), int(params.backbone_fraction * m_target))
    module_budget = m_target - n_leaves - hub_edge_count - backbone_budget
    module_budget = max(module_budget, len(modules))

    # --- small dense tier ---------------------------------------------------
    small_edges = 0
    p_small = params.small_module_density
    for mod in modules[:num_small]:
        got = _er_module_edges(mod, p_small, rng)
        if got is not None:
            chunks.append(got)
            small_edges += got.shape[0]
    # The small tier rarely absorbs its nominal quota (tiny pair counts);
    # hand the residual to the large tier so the edge target is met.
    large_budget = module_budget - small_edges

    # --- large sparse tier ---------------------------------------------------
    large_pairs = np.array(
        [mod.size * (mod.size - 1) / 2.0 for mod in modules[num_small:]],
        dtype=np.float64,
    )
    total_large_pairs = float(large_pairs.sum())
    for mod, pairs in zip(modules[num_small:], large_pairs):
        if pairs <= 0 or total_large_pairs <= 0:
            continue
        quota = large_budget * pairs / total_large_pairs
        p = float(np.clip(quota / pairs, 0.02, 0.30))
        got = _er_module_edges(mod, p, rng)
        if got is not None:
            chunks.append(got)

    # --- module backbone ----------------------------------------------------
    order = rng.permutation(len(modules))
    bridges: list[tuple[int, int]] = []
    for a, b in zip(order[:-1], order[1:]):
        k = int(rng.integers(1, 4))
        for _ in range(k):
            bridges.append((int(rng.choice(modules[a])), int(rng.choice(modules[b]))))
    n_shortcuts = max(1, len(modules) // 20)
    for _ in range(n_shortcuts):
        a, b = rng.integers(0, len(modules), size=2)
        if a != b:
            bridges.append((int(rng.choice(modules[a])), int(rng.choice(modules[b]))))
    if bridges:
        chunks.append(np.asarray(bridges, dtype=np.int64))

    # --- degree-1 satellites ---------------------------------------------------
    if n_leaves:
        anchors = rng.choice(module_pool, size=n_leaves, replace=True)
        chunks.append(np.column_stack((leaf_ids, anchors)))

    edges = np.vstack(chunks) if chunks else np.empty((0, 2), dtype=np.int64)
    return from_edge_array(n, edges)
