"""Random graph families for tests and property-based fuzzing.

The paper's own random suite is R-MAT (see :mod:`.rmat`); these classical
models give the test suite independent coverage with different degree
profiles.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_nonnegative

__all__ = ["gnp_random_graph", "gnm_random_graph", "barabasi_albert"]


def gnp_random_graph(n: int, p: float, seed=None) -> CSRGraph:
    """Erdős–Rényi G(n, p).

    Vectorised: draws the upper-triangular adjacency as one Bernoulli block
    for small ``n``; falls back to geometric skipping for large sparse
    instances.
    """
    check_nonnegative("n", n)
    check_in_range("p", p, 0.0, 1.0)
    rng = make_rng(seed)
    if n <= 1 or p == 0.0:
        return from_edge_array(n, np.empty((0, 2), np.int64))
    if n <= 2048:
        mask = rng.random((n, n)) < p
        uu, vv = np.nonzero(np.triu(mask, k=1))
        return from_edge_array(n, np.column_stack((uu, vv)))
    # Large-n path: skip-sampling over the implicit upper-triangular order.
    total_pairs = n * (n - 1) // 2
    expected = total_pairs * p
    # Sample edge ranks via geometric gaps.
    ranks = []
    pos = -1
    log1mp = np.log1p(-p)
    while True:
        gap = int(np.floor(np.log(rng.random()) / log1mp)) + 1
        pos += gap
        if pos >= total_pairs:
            break
        ranks.append(pos)
        if len(ranks) > expected * 4 + 1000:  # safety against pathological draws
            break
    if not ranks:
        return from_edge_array(n, np.empty((0, 2), np.int64))
    r = np.asarray(ranks, dtype=np.float64)
    # Invert rank -> (u, v) in the row-major upper-triangular enumeration.
    u = (n - 2 - np.floor(np.sqrt(-8 * r + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(np.int64)
    v = (r + u + 1 - n * (n - 1) / 2.0 + (n - u) * ((n - u) - 1) / 2.0).astype(np.int64)
    return from_edge_array(n, np.column_stack((u, v)))


def gnm_random_graph(n: int, m: int, seed=None) -> CSRGraph:
    """Uniform random graph with exactly ``m`` distinct edges (if possible)."""
    check_nonnegative("n", n)
    check_nonnegative("m", m)
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds max possible edges {max_edges} for n={n}")
    rng = make_rng(seed)
    if m == 0:
        return from_edge_array(n, np.empty((0, 2), np.int64))
    ranks = rng.choice(max_edges, size=m, replace=False).astype(np.float64)
    u = (n - 2 - np.floor(np.sqrt(-8 * ranks + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(np.int64)
    v = (ranks + u + 1 - n * (n - 1) / 2.0 + (n - u) * ((n - u) - 1) / 2.0).astype(np.int64)
    return from_edge_array(n, np.column_stack((u, v)))


def barabasi_albert(n: int, m_attach: int, seed=None) -> CSRGraph:
    """Barabási–Albert preferential attachment (power-law degrees).

    Each arriving vertex attaches to ``m_attach`` existing vertices chosen
    proportionally to degree.  Gives a scale-free profile comparable to
    RMAT-B, with a different community structure.
    """
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    if n < m_attach + 1:
        raise ValueError(f"n must be > m_attach, got n={n}, m_attach={m_attach}")
    rng = make_rng(seed)
    # Repeated-endpoints list implements degree-proportional sampling.
    targets = list(range(m_attach))
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    for source in range(m_attach, n):
        for t in set(targets):
            edges.append((source, t))
            repeated.extend((source, t))
        k = min(m_attach, len(repeated))
        targets = [repeated[rng.integers(len(repeated))] for _ in range(k)]
    return from_edge_array(n, np.asarray(edges, dtype=np.int64))
