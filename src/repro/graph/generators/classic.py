"""Deterministic graph families.

These are primarily test fixtures with known chordality properties:

* paths, trees, stars, cliques — chordal;
* cycles (n >= 4), grids, ladders — non-chordal with known maximal chordal
  subgraphs;
* barbells and disjoint cliques — the "densely connected components" worst
  case discussed in Section III (a k-clique costs k-1 iterations).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import build_graph, from_edge_array
from repro.graph.csr import CSRGraph
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "binary_tree",
    "ladder_graph",
    "wheel_graph",
    "barbell_graph",
    "disjoint_cliques",
]


def path_graph(n: int) -> CSRGraph:
    """Path ``0 - 1 - ... - n-1`` (chordal)."""
    check_nonnegative("n", n)
    edges = np.column_stack((np.arange(n - 1), np.arange(1, n))) if n > 1 else np.empty((0, 2), np.int64)
    return from_edge_array(n, edges)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n`` vertices (non-chordal for n >= 4)."""
    if n < 3:
        raise ValueError(f"cycle requires n >= 3, got {n}")
    base = np.arange(n)
    edges = np.column_stack((base, (base + 1) % n))
    return from_edge_array(n, edges)


def complete_graph(n: int) -> CSRGraph:
    """Clique K_n (chordal; Algorithm 1's worst case for iteration count)."""
    check_nonnegative("n", n)
    uu, vv = np.triu_indices(n, k=1)
    return from_edge_array(n, np.column_stack((uu, vv)))


def star_graph(n_leaves: int) -> CSRGraph:
    """Star: hub 0 plus ``n_leaves`` leaves (chordal, a tree)."""
    check_nonnegative("n_leaves", n_leaves)
    n = n_leaves + 1
    edges = np.column_stack((np.zeros(n_leaves, dtype=np.int64), np.arange(1, n)))
    return from_edge_array(n, edges)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """rows x cols grid (non-chordal when both dims >= 2 and area >= 4)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    ids = np.arange(rows * cols).reshape(rows, cols)
    horiz = np.column_stack((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    vert = np.column_stack((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    edges = np.vstack((horiz, vert)) if horiz.size or vert.size else np.empty((0, 2), np.int64)
    return from_edge_array(rows * cols, edges)


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree of the given depth (chordal). Depth 0 = 1 vertex."""
    check_nonnegative("depth", depth)
    n = 2 ** (depth + 1) - 1
    children = np.arange(1, n)
    parents = (children - 1) // 2
    return from_edge_array(n, np.column_stack((parents, children)))


def ladder_graph(length: int) -> CSRGraph:
    """Ladder: two paths of ``length`` vertices joined by rungs (non-chordal
    for length >= 2... specifically each 4-cycle is chordless)."""
    check_positive("length", length)
    top = np.arange(length)
    bot = np.arange(length, 2 * length)
    edges = []
    if length > 1:
        edges.append(np.column_stack((top[:-1], top[1:])))
        edges.append(np.column_stack((bot[:-1], bot[1:])))
    edges.append(np.column_stack((top, bot)))
    return from_edge_array(2 * length, np.vstack(edges))


def wheel_graph(n_rim: int) -> CSRGraph:
    """Wheel: hub 0 joined to an ``n_rim``-cycle (chordal only for n_rim=3)."""
    if n_rim < 3:
        raise ValueError(f"wheel requires n_rim >= 3, got {n_rim}")
    rim = np.arange(1, n_rim + 1)
    spokes = np.column_stack((np.zeros(n_rim, dtype=np.int64), rim))
    ring = np.column_stack((rim, np.roll(rim, -1)))
    return from_edge_array(n_rim + 1, np.vstack((spokes, ring)))


def barbell_graph(clique_size: int, bridge_length: int = 1) -> CSRGraph:
    """Two ``clique_size``-cliques joined by a path of ``bridge_length`` edges.

    Models the paper's observation that well-separated dense components
    drive the iteration count while the sparse in-between region drives the
    non-chordal fraction.
    """
    if clique_size < 1:
        raise ValueError(f"clique_size must be >= 1, got {clique_size}")
    check_positive("bridge_length", bridge_length)
    k = clique_size
    n = 2 * k + (bridge_length - 1)
    edges: list[tuple[int, int]] = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((i, j))
            edges.append((n - k + i, n - k + j))
    chain = [k - 1] + list(range(k, k + bridge_length - 1)) + [n - k]
    for a, b in zip(chain[:-1], chain[1:]):
        edges.append((a, b))
    return build_graph(n, edges)


def disjoint_cliques(num_cliques: int, clique_size: int) -> CSRGraph:
    """``num_cliques`` disjoint cliques of ``clique_size`` vertices each.

    Exercises the component-stitching corollary of Theorem 2.
    """
    check_positive("num_cliques", num_cliques)
    check_positive("clique_size", clique_size)
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    return build_graph(num_cliques * clique_size, edges)
