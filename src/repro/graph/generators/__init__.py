"""Graph generators.

* :mod:`repro.graph.generators.rmat` — the paper's synthetic suite
  (RMAT-ER, RMAT-G, RMAT-B presets from Section IV-B).
* :mod:`repro.graph.generators.bio` — synthetic gene-correlation networks
  standing in for the GEO datasets (GSE5140, GSE17072).
* :mod:`repro.graph.generators.classic` / :mod:`.random` — deterministic and
  random families used by tests, examples, and baselines.
"""

from repro.graph.generators.classic import (
    path_graph,
    cycle_graph,
    complete_graph,
    star_graph,
    grid_graph,
    binary_tree,
    ladder_graph,
    wheel_graph,
    barbell_graph,
    disjoint_cliques,
)
from repro.graph.generators.random import gnp_random_graph, gnm_random_graph, barabasi_albert
from repro.graph.generators.rmat import (
    RMATParams,
    rmat_graph,
    rmat_er,
    rmat_g,
    rmat_b,
    RMAT_ER_PROBS,
    RMAT_G_PROBS,
    RMAT_B_PROBS,
)
from repro.graph.generators.chordal import (
    ktree,
    partial_ktree,
    random_chordal,
    interval_graph,
    chordal_mutation_stream,
    random_mutation_stream,
)
from repro.graph.generators.bio import (
    correlation_network,
    synthetic_expression,
    bio_network,
    BioNetworkParams,
    GSE5140_CRT,
    GSE5140_UNT,
    GSE17072_CTL,
    GSE17072_NON,
)

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "binary_tree",
    "ladder_graph",
    "wheel_graph",
    "barbell_graph",
    "disjoint_cliques",
    "gnp_random_graph",
    "gnm_random_graph",
    "barabasi_albert",
    "ktree",
    "partial_ktree",
    "random_chordal",
    "interval_graph",
    "chordal_mutation_stream",
    "random_mutation_stream",
    "RMATParams",
    "rmat_graph",
    "rmat_er",
    "rmat_g",
    "rmat_b",
    "RMAT_ER_PROBS",
    "RMAT_G_PROBS",
    "RMAT_B_PROBS",
    "correlation_network",
    "synthetic_expression",
    "bio_network",
    "BioNetworkParams",
    "GSE5140_CRT",
    "GSE5140_UNT",
    "GSE17072_CTL",
    "GSE17072_NON",
]
