"""Breadth-first search kernels.

BFS plays three roles in the reproduction:

1. *Vertex renumbering* — the paper notes (end of Section III) that
   numbering vertices in BFS order guarantees Algorithm 1 returns a
   *connected* chordal subgraph on connected inputs, which is the hypothesis
   of the maximality theorem.  :func:`bfs_renumber` implements that.
2. *Connected components* — for the component-stitching corollary and for
   analysis.
3. *Shortest-path distributions* — Figure 3 of the paper.

The frontier loop is vectorised: each level expands all frontier vertices'
adjacency slices at once via ``indptr`` gather + ``np.repeat``, which keeps
the per-level Python overhead constant (guide: push loops into NumPy).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_levels", "bfs_order", "connected_components", "bfs_renumber"]


def _expand_frontier(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All neighbors of all frontier vertices (with duplicates)."""
    starts = graph.indptr[frontier]
    stops = graph.indptr[frontier + 1]
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=graph.indices.dtype)
    # Gather variable-length slices: offsets within the concatenated output.
    out = np.empty(total, dtype=np.int64)
    pos = 0
    for s, t in zip(starts, stops):
        ln = t - s
        out[pos:pos + ln] = graph.indices[s:t]
        pos += ln
    return out


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS level (hop distance) of every vertex from ``source``.

    Unreachable vertices get level ``-1``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        nbrs = _expand_frontier(graph, frontier)
        if nbrs.size == 0:
            break
        nbrs = np.unique(nbrs)
        new = nbrs[levels[nbrs] < 0]
        if new.size == 0:
            break
        levels[new] = depth
        frontier = new
    return levels


def bfs_order(graph: CSRGraph, source: int) -> np.ndarray:
    """Vertices reachable from ``source`` in BFS visitation order.

    Within a level, vertices appear in increasing id order (deterministic).
    """
    levels = bfs_levels(graph, source)
    reached = np.flatnonzero(levels >= 0)
    order = reached[np.argsort(levels[reached], kind="stable")]
    return order


def connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """Label connected components.

    Returns ``(num_components, labels)`` where ``labels[v]`` is the
    component id of ``v``; components are numbered by their smallest vertex
    id in increasing order (so component 0 contains vertex 0).
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    comp = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        levels = bfs_levels(graph, start)
        members = np.flatnonzero(levels >= 0)
        # bfs_levels explores the whole graph; restrict to unlabeled members
        members = members[labels[members] < 0]
        labels[members] = comp
        comp += 1
    return comp, labels


def bfs_renumber(graph: CSRGraph, source: int = 0) -> tuple[CSRGraph, np.ndarray]:
    """Relabel vertices in BFS order from ``source``.

    Vertices of later components (if any) are appended in id order after the
    source's component, each component itself BFS-ordered.  Returns
    ``(renumbered_graph, new_of_old)``.

    The paper: "if the original graph G is itself connected then numbering
    the vertices in the order they appear in a breadth first search will
    ensure that at the end of Algorithm 1, EC will produce a connected
    subgraph."
    """
    from repro.graph.ops import relabel  # local import avoids cycle

    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    new_of_old = np.full(n, -1, dtype=np.int64)
    next_id = 0
    seeds = [source] + [v for v in range(n) if v != source]
    for seed in seeds:
        if new_of_old[seed] >= 0:
            continue
        order = bfs_order(graph, seed)
        order = order[new_of_old[order] < 0]
        new_of_old[order] = np.arange(next_id, next_id + order.size)
        next_id += order.size
    return relabel(graph, new_of_old), new_of_old
