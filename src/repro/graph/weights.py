"""Per-edge weights for weighted extraction (:mod:`repro.core.weighted`).

The CSR substrate stores weights *arc-aligned*: one float per stored
directed arc, with the two arcs of an undirected edge carrying the same
value, so ``graph.neighbor_weights(v)`` lines up with
``graph.neighbors(v)`` and the weighted engine never needs a hash lookup
on its hot path.  This module is the only place that builds that array —
:func:`attach_edge_weights` accepts the user-facing shapes (a
``{(u, v): w}`` mapping, a per-edge array aligned with
:meth:`~repro.graph.csr.CSRGraph.edge_array` rows, or a scalar) and
validates them once:

* weights must be finite (no NaN/inf) — :class:`GraphFormatError`;
* a mapping key must name an actual edge — :class:`GraphFormatError`;
* conflicting duplicates (``(u, v)`` and ``(v, u)`` with different
  values) are rejected; agreeing duplicates are fine;
* zero and negative weights are *allowed* — the weighted engine treats
  weight as a preference, not a capacity, and degenerate values simply
  lower an edge's retention priority (property-tested in
  ``tests/test_weighted_engine.py``).

Edges a mapping does not name take ``default`` (1.0), so sparse weight
annotations over large graphs stay cheap to express.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "attach_edge_weights",
    "uniform_weights",
    "edge_weight_mapping",
    "retained_weight",
]


def _edge_keys(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted_keys, order)`` for the rows of ``graph.edge_array()``,
    where a row ``(u, v)`` with ``u < v`` gets key ``u * n + v``."""
    e = graph.edge_array()
    n = max(graph.num_vertices, 1)
    keys = e[:, 0].astype(np.int64) * n + e[:, 1].astype(np.int64)
    order = np.argsort(keys, kind="stable")
    return keys[order], order


def _row_weights_from_mapping(
    graph: CSRGraph, mapping: Mapping, default: float
) -> np.ndarray:
    """Per-edge weights (edge_array row order) from a ``{(u, v): w}`` map."""
    n = graph.num_vertices
    canonical: dict[tuple[int, int], float] = {}
    for key, value in mapping.items():
        try:
            u, v = (int(key[0]), int(key[1]))
        except (TypeError, ValueError, IndexError):
            raise GraphFormatError(
                f"weight key {key!r} is not an edge (u, v) pair"
            ) from None
        if not 0 <= u < n or not 0 <= v < n or u == v:
            raise GraphFormatError(
                f"weight key ({u}, {v}) is not a valid edge of an "
                f"n={n} graph"
            )
        if not graph.has_edge(u, v):
            raise GraphFormatError(
                f"weight given for ({u}, {v}), which is not an edge of the graph"
            )
        edge = (min(u, v), max(u, v))
        w = float(value)
        if edge in canonical and canonical[edge] != w:
            raise GraphFormatError(
                f"conflicting duplicate weights for edge {edge}: "
                f"{canonical[edge]} vs {w} (its two orientations must agree)"
            )
        canonical[edge] = w
    rows = graph.edge_array()
    out = np.full(rows.shape[0], float(default), dtype=np.float64)
    if canonical:
        for i, (u, v) in enumerate(rows):
            w = canonical.get((int(u), int(v)))
            if w is not None:
                out[i] = w
    return out


def attach_edge_weights(
    graph: CSRGraph,
    weights,
    *,
    default: float = 1.0,
) -> CSRGraph:
    """Return ``graph`` with per-edge weights attached.

    Parameters
    ----------
    graph:
        Any :class:`CSRGraph`; existing weights (if any) are replaced.
    weights:
        One of

        * a mapping ``{(u, v): weight}`` — either orientation of an edge
          is accepted, conflicting duplicates raise, unnamed edges take
          ``default``;
        * a 1-D array-like of length ``graph.num_edges`` aligned with
          :meth:`CSRGraph.edge_array` rows;
        * a scalar, applied uniformly.
    default:
        Fill value for edges a mapping does not name.

    Returns
    -------
    A new :class:`CSRGraph` sharing the CSR index arrays, carrying the
    validated arc-aligned weight array (``graph.has_weights`` is True).

    Raises
    ------
    GraphFormatError
        Non-finite weights, keys that are not edges, conflicting
        duplicate keys, or a per-edge array of the wrong length.
    """
    if isinstance(weights, Mapping):
        row_weights = _row_weights_from_mapping(graph, weights, default)
    elif np.isscalar(weights):
        row_weights = np.full(graph.num_edges, float(weights), dtype=np.float64)
    else:
        row_weights = np.asarray(weights, dtype=np.float64)
        if row_weights.ndim != 1 or row_weights.size != graph.num_edges:
            raise GraphFormatError(
                f"per-edge weights must be a 1-D array of length "
                f"num_edges={graph.num_edges}, got shape {row_weights.shape}"
            )
    if row_weights.size and not np.all(np.isfinite(row_weights)):
        raise GraphFormatError("edge weights must be finite (no NaN/inf)")

    # Scatter row weights to both arcs of each edge: key every arc by its
    # canonical (min, max) pair and look it up in the sorted row keys.
    n = max(graph.num_vertices, 1)
    sorted_keys, order = _edge_keys(graph)
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
    )
    dst = graph.indices.astype(np.int64)
    arc_keys = np.minimum(src, dst) * n + np.maximum(src, dst)
    pos = np.searchsorted(sorted_keys, arc_keys)
    arc_weights = row_weights[order][pos] if row_weights.size else row_weights
    return CSRGraph(
        graph.indptr,
        graph.indices,
        sorted_adjacency=graph.sorted_adjacency,
        validate=False,
        arc_weights=arc_weights,
    )


def uniform_weights(graph: CSRGraph, value: float = 1.0) -> CSRGraph:
    """``graph`` with every edge weighted ``value`` (the unweighted limit)."""
    return attach_edge_weights(graph, float(value))


def edge_weight_mapping(graph: CSRGraph) -> dict[tuple[int, int], float]:
    """``{(u, v): weight}`` over ``u < v`` edges (uniform 1.0 when the
    graph is unweighted) — the lookup shape the serial weighted pass and
    the weight-greedy completion use."""
    rows = graph.edge_array()
    if graph.has_weights:
        values = graph.edge_weight_rows()
    else:
        values = np.ones(rows.shape[0], dtype=np.float64)
    return {
        (int(u), int(v)): float(w) for (u, v), w in zip(rows, values)
    }


def retained_weight(graph: CSRGraph, edges) -> float:
    """Total weight of ``edges`` under ``graph``'s weights.

    ``edges`` is any ``(k, 2)`` array-like of edges of ``graph``.  For an
    unweighted graph this is the edge count (uniform weight 1.0), so
    weighted and unweighted results are directly comparable.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return 0.0
    if not graph.has_weights:
        return float(e.shape[0])
    n = max(graph.num_vertices, 1)
    sorted_keys, order = _edge_keys(graph)
    row_weights = graph.edge_weight_rows()[order]
    keys = (
        np.minimum(e[:, 0], e[:, 1]) * n + np.maximum(e[:, 0], e[:, 1])
    ).astype(np.int64)
    pos = np.searchsorted(sorted_keys, keys)
    clipped = np.minimum(pos, sorted_keys.size - 1)
    miss = (pos >= sorted_keys.size) | (sorted_keys[clipped] != keys)
    if np.any(miss):
        bad = e[miss]
        raise GraphFormatError(
            f"edges not in the graph: {[tuple(map(int, row)) for row in bad[:3]]}"
        )
    return float(row_weights[pos].sum())
