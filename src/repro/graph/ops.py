"""Structural graph operations: subgraphs, relabeling, unions, complement.

``edge_subgraph`` is the operation that materialises the paper's output —
the maximal chordal subgraph ``G' = (V, EC)`` — from the chordal edge set
returned by Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "edge_subgraph",
    "induced_subgraph",
    "relabel",
    "union_edges",
    "complement",
    "degree_histogram",
]


def edge_subgraph(graph: CSRGraph, edges: np.ndarray | Iterable[tuple[int, int]]) -> CSRGraph:
    """Subgraph on the *same vertex set* keeping only ``edges``.

    This matches the paper's definition of a chordal subgraph
    ``G' = (V, EC)`` — all vertices are retained, including isolated ones.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    sub = from_edge_array(graph.num_vertices, arr)
    # Sanity: every requested edge must exist in the parent graph.
    for u, v in sub.edge_array():
        if not graph.has_edge(int(u), int(v)):
            raise GraphFormatError(f"edge ({u}, {v}) not present in parent graph")
    return sub


def induced_subgraph(graph: CSRGraph, vertices: Iterable[int]) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``, relabelled to ``0..k-1``.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original id
    of new vertex ``i``.
    """
    keep = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
    if keep.size and (keep[0] < 0 or keep[-1] >= graph.num_vertices):
        raise GraphFormatError("vertex ids out of range")
    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[keep] = np.arange(keep.size)
    edges = graph.edge_array()
    if edges.size:
        mask = (new_id[edges[:, 0]] >= 0) & (new_id[edges[:, 1]] >= 0)
        sub_edges = np.column_stack((new_id[edges[mask, 0]], new_id[edges[mask, 1]]))
    else:
        sub_edges = np.empty((0, 2), dtype=np.int64)
    return from_edge_array(keep.size, sub_edges), keep


def relabel(graph: CSRGraph, new_of_old: np.ndarray) -> CSRGraph:
    """Relabel vertices by the permutation ``new_of_old`` (old id -> new id).

    Relabeling is how the paper controls vertex-id order, which Algorithm 1's
    lowest-parent structure is sensitive to (e.g. BFS numbering guarantees a
    connected chordal subgraph, Theorem 2 corollary).
    """
    perm = np.asarray(new_of_old, dtype=np.int64)
    n = graph.num_vertices
    if perm.shape != (n,):
        raise GraphFormatError(f"permutation must have shape ({n},), got {perm.shape}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphFormatError("new_of_old is not a permutation of 0..n-1")
    edges = graph.edge_array()
    if edges.size:
        edges = np.column_stack((perm[edges[:, 0]], perm[edges[:, 1]]))
    return from_edge_array(n, edges)


def union_edges(graph_a: CSRGraph, graph_b: CSRGraph) -> CSRGraph:
    """Union of the edge sets of two graphs over the same vertex set."""
    if graph_a.num_vertices != graph_b.num_vertices:
        raise GraphFormatError(
            f"vertex-set mismatch: {graph_a.num_vertices} vs {graph_b.num_vertices}"
        )
    edges = np.vstack((graph_a.edge_array(), graph_b.edge_array()))
    return from_edge_array(graph_a.num_vertices, edges)


def complement(graph: CSRGraph) -> CSRGraph:
    """Complement graph (only sensible for small n; used in tests)."""
    n = graph.num_vertices
    if n > 4096:
        raise ValueError(f"complement limited to n <= 4096, got n={n}")
    dense = np.zeros((n, n), dtype=bool)
    edges = graph.edge_array()
    if edges.size:
        dense[edges[:, 0], edges[:, 1]] = True
        dense[edges[:, 1], edges[:, 0]] = True
    comp = ~dense
    np.fill_diagonal(comp, False)
    uu, vv = np.nonzero(np.triu(comp, k=1))
    return from_edge_array(n, np.column_stack((uu, vv)))


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram ``h`` with ``h[d]`` = number of vertices of degree ``d``."""
    degs = graph.degrees()
    if degs.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs.astype(np.int64))
