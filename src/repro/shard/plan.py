"""Shard planning: stream a huge edge file into per-shard spill files.

The planner makes the one pass-structured decision the whole sharded
extractor rests on: a **contiguous, edge-balanced vertex partition**.
Shard ``s`` owns the vertex range ``[cuts[s], cuts[s+1])`` produced by
:func:`repro.parallel.partition.degree_balanced_cuts`, so ownership of
any endpoint is a single ``searchsorted`` and every per-shard graph is a
dense local id range (``local = global - cuts[s]``) — no per-shard
relabel tables.

Planning streams the input with :class:`repro.graph.io.EdgeStream`
(SNAP / MatrixMarket / edge list, gzipped or not) in ``(k, 2)`` chunks
and never materialises the full edge list:

1. *(SNAP only)* an id pass merges per-chunk unique endpoint ids into
   one sorted label array (SNAP dumps use sparse ids; the label array is
   ``O(n)``, not ``O(m)``, and is saved as ``labels.npy``);
2. a degree pass accumulates per-vertex degree counts (``O(n)``);
3. a binning pass canonicalises each chunk to ``u < v`` rows and appends
   them to ``shard_XXXX.spill`` (both endpoints owned by shard ``XXXX``)
   or ``boundary.spill`` (endpoints on different shards) as raw
   little-endian ``int64`` pairs.

The resulting :class:`ShardPlan` is persisted as ``plan.json`` in the
spill directory; :func:`build_plan` reuses a directory whose plan
matches the input's content digest (resume after a crash re-streams
nothing).  Duplicate and self-loop pairs are *not* removed here — the
per-shard CSR build collapses them — so spill counts are raw pair
counts, not graph edge counts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError, ShardError
from repro.graph.io import EdgeStream
from repro.parallel.partition import degree_balanced_cuts

__all__ = [
    "PLAN_SCHEMA",
    "ShardPlan",
    "build_plan",
    "load_plan",
    "load_shard_edges",
    "iter_boundary_edges",
    "load_boundary_edges",
]

#: Bump when the on-disk spill layout changes; plans with a different
#: schema are rebuilt, never half-read.
PLAN_SCHEMA = 1

_PLAN_NAME = "plan.json"
_LABELS_NAME = "labels.npy"
_DIGEST_CHUNK = 1 << 20
#: Pairs per chunk when re-reading a spill file (16 MiB of int64 pairs).
_SPILL_CHUNK_PAIRS = 1 << 20


@dataclass(frozen=True)
class ShardPlan:
    """Immutable description of one planned sharding of one input file.

    ``cuts`` has length ``num_shards + 1``; shard ``s`` owns global
    vertex ids ``[cuts[s], cuts[s+1])`` (compacted ids for SNAP inputs —
    ``labels.npy`` maps them back).  ``local_counts[s]`` and
    ``boundary_count`` are **raw pair counts** in the spill files, before
    duplicate/self-loop collapse.
    """

    spill_dir: str
    input_path: str
    input_format: str
    input_digest: str
    num_vertices: int
    num_shards: int
    cuts: tuple[int, ...]
    raw_pairs: int
    local_counts: tuple[int, ...]
    boundary_count: int
    has_labels: bool
    schema: int = PLAN_SCHEMA

    # -- spill-directory layout -------------------------------------
    @property
    def plan_path(self) -> Path:
        return Path(self.spill_dir) / _PLAN_NAME

    @property
    def labels_path(self) -> Path:
        return Path(self.spill_dir) / _LABELS_NAME

    @property
    def boundary_path(self) -> Path:
        return Path(self.spill_dir) / "boundary.spill"

    @property
    def results_dir(self) -> Path:
        return Path(self.spill_dir) / "results"

    def spill_path(self, shard: int) -> Path:
        self._check_shard(shard)
        return Path(self.spill_dir) / f"shard_{shard:04d}.spill"

    def result_path(self, shard: int) -> Path:
        self._check_shard(shard)
        return self.results_dir / f"shard_{shard:04d}.npz"

    # -- partition queries ------------------------------------------
    def shard_range(self, shard: int) -> tuple[int, int]:
        """Global vertex id range ``[lo, hi)`` owned by ``shard``."""
        self._check_shard(shard)
        return int(self.cuts[shard]), int(self.cuts[shard + 1])

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning shard index for each global vertex id."""
        cuts = np.asarray(self.cuts, dtype=np.int64)
        return np.searchsorted(cuts, np.asarray(vertices), side="right") - 1

    def labels(self) -> np.ndarray | None:
        """``labels[compact_id] = original_id`` for SNAP inputs, else None."""
        if not self.has_labels:
            return None
        return np.load(self.labels_path)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ShardError(
                f"shard index {shard} out of range [0, {self.num_shards}) "
                f"for spill dir {self.spill_dir}"
            )

    # -- persistence ------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "input_path": self.input_path,
            "input_format": self.input_format,
            "input_digest": self.input_digest,
            "num_vertices": self.num_vertices,
            "num_shards": self.num_shards,
            "cuts": list(self.cuts),
            "raw_pairs": self.raw_pairs,
            "local_counts": list(self.local_counts),
            "boundary_count": self.boundary_count,
            "has_labels": self.has_labels,
        }

    @classmethod
    def from_json(cls, spill_dir: str | Path, payload: dict) -> "ShardPlan":
        try:
            return cls(
                spill_dir=str(spill_dir),
                input_path=str(payload["input_path"]),
                input_format=str(payload["input_format"]),
                input_digest=str(payload["input_digest"]),
                num_vertices=int(payload["num_vertices"]),
                num_shards=int(payload["num_shards"]),
                cuts=tuple(int(c) for c in payload["cuts"]),
                raw_pairs=int(payload["raw_pairs"]),
                local_counts=tuple(int(c) for c in payload["local_counts"]),
                boundary_count=int(payload["boundary_count"]),
                has_labels=bool(payload["has_labels"]),
                schema=int(payload["schema"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(
                f"malformed plan.json in {spill_dir}: {exc}"
            ) from exc

    def save(self) -> None:
        path = self.plan_path
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        os.replace(tmp, path)


def file_digest(path: str | Path) -> str:
    """SHA-256 of the raw file bytes (gz files hash as-is)."""
    h = hashlib.sha256(b"repro-shard-input-v1")
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_DIGEST_CHUNK)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def load_plan(spill_dir: str | Path) -> ShardPlan:
    """Load the persisted plan from ``spill_dir`` (raises if absent)."""
    path = Path(spill_dir) / _PLAN_NAME
    if not path.exists():
        raise ShardError(
            f"no plan.json in {spill_dir} — run `repro shard plan` first"
        )
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardError(f"unreadable plan.json in {spill_dir}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ShardError(f"malformed plan.json in {spill_dir}: not an object")
    return ShardPlan.from_json(spill_dir, payload)


def _collect_snap_labels(stream: EdgeStream) -> np.ndarray:
    """Sorted unique endpoint ids of a SNAP stream, in O(n) memory.

    Incremental ``union1d`` keeps only the sorted label set live — one
    extra merge per ~64K-pair chunk, never the concatenated id list.
    """
    labels = np.empty(0, dtype=np.int64)
    for chunk in stream:
        labels = np.union1d(labels, chunk.ravel())
    if labels.size and labels[0] < 0:
        raise GraphFormatError(
            f"negative vertex id {labels[0]} in {stream.path}"
        )
    return labels


def _accumulate_degrees(
    stream: EdgeStream, labels: np.ndarray | None
) -> tuple[np.ndarray, int]:
    """One streamed pass: per-vertex pair-endpoint counts and raw pair total.

    Counts are a balance heuristic — duplicates and self-loops are still
    included — which is exactly what shard-size balancing wants: spill
    bytes are proportional to raw pairs, not deduped edges.
    """
    degrees = np.zeros(1024, dtype=np.int64)
    max_id = -1
    raw_pairs = 0
    for chunk in stream:
        raw_pairs += chunk.shape[0]
        flat = chunk.ravel()
        if labels is not None:
            flat = np.searchsorted(labels, flat)
        elif flat.size and flat.min() < 0:
            raise GraphFormatError(
                f"negative vertex id {flat.min()} in {stream.path}"
            )
        counts = np.bincount(flat)
        if counts.size > degrees.size:
            grown = np.zeros(max(counts.size, 2 * degrees.size), dtype=np.int64)
            grown[: degrees.size] = degrees
            degrees = grown
        degrees[: counts.size] += counts
        if flat.size:
            max_id = max(max_id, int(flat.max()))
    declared = stream.declared_vertices
    n = max_id + 1
    if labels is None and declared is not None:
        n = max(n, int(declared))
    return degrees[:n], raw_pairs


def _bin_pass(
    stream: EdgeStream,
    plan_dir: Path,
    cuts: np.ndarray,
    labels: np.ndarray | None,
    num_shards: int,
) -> tuple[list[int], int]:
    """Streamed binning: canonical ``u < v`` rows into per-shard spills.

    Self-loops are dropped here (they are never graph edges and can
    never be boundary pairs); duplicates pass through and are collapsed
    by the per-shard CSR build.
    """
    local_counts = [0] * num_shards
    boundary_count = 0
    handles = [
        open(plan_dir / f"shard_{s:04d}.spill", "wb") for s in range(num_shards)
    ]
    boundary_fh = open(plan_dir / "boundary.spill", "wb")
    try:
        for chunk in stream:
            if labels is not None:
                chunk = np.searchsorted(labels, chunk)
            keep = chunk[:, 0] != chunk[:, 1]
            if not keep.all():
                chunk = chunk[keep]
            if not chunk.size:
                continue
            lo = chunk.min(axis=1)
            hi = chunk.max(axis=1)
            rows = np.column_stack((lo, hi))
            owner_lo = np.searchsorted(cuts, lo, side="right") - 1
            owner_hi = np.searchsorted(cuts, hi, side="right") - 1
            local = owner_lo == owner_hi
            boundary_rows = rows[~local]
            if boundary_rows.size:
                np.ascontiguousarray(boundary_rows, dtype="<i8").tofile(boundary_fh)
                boundary_count += boundary_rows.shape[0]
            rows = rows[local]
            owners = owner_lo[local]
            for s in np.unique(owners):
                shard_rows = rows[owners == s]
                np.ascontiguousarray(shard_rows, dtype="<i8").tofile(handles[s])
                local_counts[int(s)] += shard_rows.shape[0]
    finally:
        for fh in handles:
            fh.close()
        boundary_fh.close()
    return local_counts, boundary_count


def build_plan(
    input_path: str | Path,
    num_shards: int,
    spill_dir: str | Path,
    *,
    format: str | None = None,
    resume: bool = True,
) -> tuple[ShardPlan, bool]:
    """Plan (or resume) a sharding of ``input_path`` into ``spill_dir``.

    Returns ``(plan, reused)``; ``reused`` is True when an existing
    ``plan.json`` matched the input's content digest and shard count and
    all spill files were intact, in which case nothing was re-streamed.
    Cached per-shard *results* are keyed separately (input digest + cuts
    + config), so a rebuild of identical spills keeps them valid.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    plan_dir = Path(spill_dir)
    plan_dir.mkdir(parents=True, exist_ok=True)
    digest = file_digest(input_path)

    if resume and (plan_dir / _PLAN_NAME).exists():
        prior = load_plan(plan_dir)
        if (
            prior.schema == PLAN_SCHEMA
            and prior.input_digest == digest
            and prior.num_shards == num_shards
            and (format is None or prior.input_format == format)
            and _spill_files_intact(prior)
        ):
            return prior, True

    stream = EdgeStream(input_path, format=format)
    labels: np.ndarray | None = None
    if stream.format == "snap":
        labels = _collect_snap_labels(stream)
        np.save(plan_dir / _LABELS_NAME, labels)
    degrees, raw_pairs = _accumulate_degrees(stream, labels)
    num_vertices = int(degrees.size)
    if num_vertices == 0:
        cuts = np.zeros(num_shards + 1, dtype=np.int64)
    else:
        cuts = degree_balanced_cuts(degrees.astype(np.float64), num_shards)
    local_counts, boundary_count = _bin_pass(
        stream, plan_dir, cuts, labels, num_shards
    )

    plan = ShardPlan(
        spill_dir=str(plan_dir),
        input_path=str(input_path),
        input_format=stream.format,
        input_digest=digest,
        num_vertices=num_vertices,
        num_shards=num_shards,
        cuts=tuple(int(c) for c in cuts),
        raw_pairs=raw_pairs,
        local_counts=tuple(local_counts),
        boundary_count=boundary_count,
        has_labels=labels is not None,
    )
    plan.save()
    return plan, False


def load_shard_edges(plan: ShardPlan, shard: int) -> np.ndarray:
    """Raw canonical pairs of one shard's spill file as a ``(k, 2)`` array.

    Global ids; duplicates possible.  This is the one per-shard array the
    driver materialises — ``O(max shard)``, never ``O(m)``.
    """
    path = plan.spill_path(shard)
    if not path.exists():
        raise ShardError(
            f"missing spill file {path} — re-run `repro shard plan` "
            f"(shard {shard} of {plan.num_shards})"
        )
    arr = np.fromfile(path, dtype="<i8")
    if arr.size != 2 * plan.local_counts[shard]:
        raise ShardError(
            f"spill file {path} holds {arr.size // 2} pairs, plan recorded "
            f"{plan.local_counts[shard]} — stale spill dir, re-run `repro shard plan`"
        )
    return arr.astype(np.int64, copy=False).reshape(-1, 2)


def iter_boundary_edges(
    plan: ShardPlan, *, chunk_pairs: int = _SPILL_CHUNK_PAIRS
) -> Iterator[np.ndarray]:
    """Stream the boundary spill in ``(k, 2)`` chunks (raw, duplicates kept)."""
    path = plan.boundary_path
    if plan.boundary_count == 0:
        return
    if not path.exists():
        raise ShardError(
            f"missing boundary spill {path} — re-run `repro shard plan`"
        )
    with open(path, "rb") as fh:
        while True:
            arr = np.fromfile(fh, dtype="<i8", count=2 * chunk_pairs)
            if arr.size == 0:
                break
            if arr.size % 2:
                raise ShardError(f"truncated boundary spill {path}")
            yield arr.astype(np.int64, copy=False).reshape(-1, 2)


def load_boundary_edges(plan: ShardPlan) -> np.ndarray:
    """Unique canonical boundary pairs, sorted lexicographically.

    Dedup is done per streamed chunk then once over the merged uniques,
    so peak memory is O(unique boundary pairs), not O(raw pairs).
    """
    uniques = [np.empty((0, 2), dtype=np.int64)]
    for chunk in iter_boundary_edges(plan):
        uniques.append(np.unique(chunk, axis=0))
    merged = np.vstack(uniques)
    if merged.size == 0:
        return merged.reshape(0, 2)
    return np.unique(merged, axis=0)


def _spill_files_intact(plan: ShardPlan) -> bool:
    """All spill files present with exactly the recorded pair counts."""
    row_bytes = 16  # two little-endian int64s
    for s in range(plan.num_shards):
        path = plan.spill_path(s)
        if not path.exists() or path.stat().st_size != plan.local_counts[s] * row_bytes:
            return False
    bpath = plan.boundary_path
    if plan.boundary_count == 0:
        return not bpath.exists() or bpath.stat().st_size == 0
    return bpath.exists() and bpath.stat().st_size == plan.boundary_count * row_bytes
