"""Out-of-core sharded extraction: graphs that never fit in one segment.

Every in-memory engine (and the service, and the incremental session)
assumes the whole CSR fits in one shared segment.  This package lifts
that cap: the input file is streamed once into per-shard spill files by
an edge-balanced contiguous vertex partition, each shard is extracted
independently through the ordinary engine registry, and boundary edges
are reconciled in deterministic :func:`~repro.chordality.maximality.edge_addable`
rounds so the stitched result is chordal **by construction** — the
certified fix for the border-merge cascade the distributed prior art
(`repro.baselines.distributed`) suffers.

Modules
-------
:mod:`repro.shard.plan`
    Streaming planner: content digest, degree-balanced cuts, per-shard
    spill files, ``plan.json`` persistence and resume.
:mod:`repro.shard.cache`
    On-disk per-shard result cache keyed by (input digest, cuts,
    resolved config) — a crashed run resumes per shard.
:mod:`repro.shard.driver`
    Per-shard extraction, the boundary fixpoint stitcher, and the
    sampled seam certificates.

Quickstart::

    from repro.shard import extract_sharded
    result = extract_sharded("huge.txt.gz", num_shards=8,
                             spill_dir="/tmp/spill")
    result.edges            # global chordal edge set, canonical order

CLI: ``repro extract --sharded --shards N --spill-dir DIR`` or the
stepwise ``repro shard plan|run|stitch`` group.
"""

from .cache import (
    clear_shard_results,
    load_shard_result,
    shard_result_digest,
    store_shard_result,
)
from .driver import (
    ShardedResult,
    ShardStats,
    certify_stitched,
    default_shard_config,
    extract_shard,
    extract_sharded,
    run_shards,
    sampled_boundary_report,
    stitch_shards,
)
from .plan import (
    ShardPlan,
    build_plan,
    load_boundary_edges,
    load_plan,
    load_shard_edges,
)

__all__ = [
    "ShardPlan",
    "ShardStats",
    "ShardedResult",
    "build_plan",
    "certify_stitched",
    "clear_shard_results",
    "default_shard_config",
    "extract_shard",
    "extract_sharded",
    "load_boundary_edges",
    "load_plan",
    "load_shard_edges",
    "load_shard_result",
    "run_shards",
    "sampled_boundary_report",
    "shard_result_digest",
    "stitch_shards",
    "store_shard_result",
]
