"""On-disk shard result cache: crash-safe resume for sharded extraction.

Each shard's retained (chordal) edge set is persisted as
``results/shard_XXXX.npz`` inside the spill directory, keyed by a
content digest in the style of
:func:`repro.service.protocol.graph_content_hash`: SHA-256 over the
input file's digest, the partition (shard count + cuts + spill schema),
the shard index, and the *resolved* extraction config
(:func:`repro.service.protocol.config_cache_key` — the same identity the
extraction service caches under).  A re-run with the same input,
partition, and regime loads instead of extracting; anything else — new
input bytes, different cuts, different engine knobs — misses cleanly.

Corrupt or stale result files are treated as misses, never as errors:
a crashed writer leaves at worst a half-written temp file (writes go
through ``os.replace``), and a digest mismatch means "extract again",
which is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.core.config import ExtractionConfig
from repro.service.protocol import config_cache_key

from .plan import ShardPlan

__all__ = [
    "shard_result_digest",
    "store_shard_result",
    "load_shard_result",
    "clear_shard_results",
]


def shard_result_digest(
    plan: ShardPlan, shard: int, config: ExtractionConfig
) -> str:
    """Cache identity of one shard's extraction under one regime."""
    key = {
        "input": plan.input_digest,
        "schema": plan.schema,
        "num_shards": plan.num_shards,
        "cuts": list(plan.cuts),
        "shard": shard,
        "config": list(config_cache_key(config.resolved())),
    }
    payload = json.dumps(key, sort_keys=True, default=str).encode()
    return hashlib.sha256(b"repro-shard-result-v1" + payload).hexdigest()


def store_shard_result(
    plan: ShardPlan,
    shard: int,
    config: ExtractionConfig,
    edges: np.ndarray,
    meta: dict,
) -> Path:
    """Persist one shard's retained edges (global ids) atomically."""
    plan.results_dir.mkdir(parents=True, exist_ok=True)
    path = plan.result_path(shard)
    tmp = path.with_suffix(".npz.tmp")
    digest = shard_result_digest(plan, shard, config)
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            digest=np.array(digest),
            edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            meta=np.array(json.dumps(meta, sort_keys=True)),
        )
    os.replace(tmp, path)
    return path


def load_shard_result(
    plan: ShardPlan, shard: int, config: ExtractionConfig
) -> tuple[np.ndarray, dict] | None:
    """Cached ``(edges, meta)`` for one shard, or ``None`` on any miss.

    A miss is silent by design: missing file, digest mismatch (different
    input / partition / config), or a corrupt archive all mean the shard
    must be extracted again.
    """
    path = plan.result_path(shard)
    if not path.exists():
        return None
    expected = shard_result_digest(plan, shard, config)
    try:
        with np.load(path, allow_pickle=False) as payload:
            if str(payload["digest"]) != expected:
                return None
            edges = np.asarray(payload["edges"], dtype=np.int64).reshape(-1, 2)
            meta = json.loads(str(payload["meta"]))
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
        return None
    if not isinstance(meta, dict):
        return None
    return edges, meta


def clear_shard_results(plan: ShardPlan) -> int:
    """Delete every cached shard result; returns the number removed."""
    removed = 0
    if not plan.results_dir.exists():
        return removed
    for path in sorted(plan.results_dir.glob("shard_*.npz")):
        path.unlink()
        removed += 1
    return removed
