"""Shard driver: per-shard extraction and chordal boundary stitching.

Why this is correct (and where the prior art fails)
---------------------------------------------------
``baselines/distributed.py`` models the Section II prior art this
subsystem replaces: partition, extract locally, then *merge all border
edges back* — which cascades, because two locally-chordal halves plus
their full border set routinely contain a 4-cycle spanning the cut.

The driver keeps chordality **by construction** instead:

1. Each shard's spill builds a local CSR and runs any registered engine
   (:class:`repro.core.session.Extractor`); the per-shard output is
   chordal (and, with ``maximalize=True``, certified locally maximal).
2. The disjoint union of the per-shard chordal subgraphs is chordal —
   every cycle lives inside one shard because no retained edge crosses
   a cut.
3. Boundary edges are then offered one at a time in deterministic
   lexicographic rounds through
   :func:`repro.chordality.maximality.edge_addable`, which admits an
   edge only if the result stays chordal.  Admission can *unlock* other
   boundary edges (adding a chord can ban the path that blocked a
   neighbour), so rounds repeat until a full round admits nothing; at
   that fixpoint every remaining boundary edge was tested against the
   final subgraph and certified non-addable — a maximality certificate
   over the whole boundary set, not a sample.

Three accelerations keep stitching near-linear in practice without
touching determinism:

* a union-find over the stitched subgraph's components — endpoints in
  different components are always addable (no connecting path exists to
  lose a chord), skipping the BFS entirely;
* the empty-intersection shortcut — same component *and* no common
  neighbour means ``H - (N(u) ∩ N(v))`` is ``H`` itself, where the
  endpoints are connected, so the edge is rejected without the BFS
  (which in exactly this case would have to scan the whole component);
* a per-component admission stamp — a rejected edge is only re-tested
  after its component has gained an edge, so post-fixpoint rounds cost
  O(pending) instead of O(pending × BFS).

Global maximality is certified for boundary edges; edges *rejected
inside a shard* are only locally certified (re-offering all of them
globally would need the full graph in memory — exactly what sharding
exists to avoid).  :func:`sampled_boundary_report` additionally
spot-checks the seam: sampled rejected edges must still be non-addable,
and sampled boundary neighbourhoods must be hole-free (a hole in an
induced subgraph is a genuine hole).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chordality.maximality import edge_addable
from repro.chordality.recognition import find_hole, is_chordal
from repro.chordality.verify import verify_extraction
from repro.core.config import ExtractionConfig
from repro.core.session import Extractor, _canonical_edges
from repro.errors import ShardError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.ops import induced_subgraph

from .cache import load_shard_result, store_shard_result
from .plan import ShardPlan, build_plan, load_boundary_edges, load_shard_edges

__all__ = [
    "ShardStats",
    "ShardedResult",
    "certify_stitched",
    "default_shard_config",
    "extract_shard",
    "run_shards",
    "stitch_shards",
    "extract_sharded",
    "sampled_boundary_report",
]

#: Rounds are bounded by the admission count (each non-final round
#: admits >= 1 edge), so this cap only trips on an internal bug.
_MAX_ROUNDS = 1_000_000

#: Boundary rows converted to Python ints per stitch-loop chunk.
_STITCH_CHUNK = 1 << 16


def default_shard_config() -> ExtractionConfig:
    """The default per-shard regime: superstep engine, ``maximalize=True``.

    Maximalization is on by default because the acceptance bar for the
    sharded mode is *certified* output: ``verify_extraction`` with the
    maximality check must pass on every shard.
    """
    return ExtractionConfig(maximalize=True)


@dataclass(frozen=True)
class ShardStats:
    """Per-shard extraction accounting (one row of ``repro shard run``)."""

    shard: int
    num_vertices: int
    num_edges: int
    retained_edges: int
    seconds: float
    from_cache: bool
    engine: str
    verified: bool = False


@dataclass(frozen=True)
class ShardedResult:
    """Stitched result of one sharded extraction.

    ``edges`` is the global chordal edge set, canonicalised exactly like
    :attr:`repro.core.session.ChordalResult.edges` (``u < v`` rows in
    lexicographic order).  Ids are the plan's global ids — compacted for
    SNAP inputs (``plan.labels()`` maps back).  ``rejected`` is the
    boundary edges certified non-addable against the final subgraph.
    """

    edges: np.ndarray
    num_vertices: int
    plan: ShardPlan
    shard_stats: tuple[ShardStats, ...]
    boundary_edges: int
    rounds: int
    admitted: np.ndarray = field(repr=False)
    rejected: np.ndarray = field(repr=False)

    @property
    def admitted_boundary(self) -> int:
        return int(self.admitted.shape[0])

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def num_chordal_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def intra_shard_edges(self) -> int:
        return sum(s.retained_edges for s in self.shard_stats)

    def subgraph(self) -> CSRGraph:
        """The stitched chordal subgraph as a CSR graph (materialised)."""
        return from_edge_array(self.num_vertices, self.edges)


def _shard_graph(plan: ShardPlan, shard: int) -> CSRGraph:
    """Build one shard's local CSR from its spill file (local ids)."""
    lo, hi = plan.shard_range(shard)
    edges = load_shard_edges(plan, shard)
    return from_edge_array(hi - lo, edges - lo)


def extract_shard(
    plan: ShardPlan,
    shard: int,
    *,
    session: Extractor | None = None,
    config: ExtractionConfig | None = None,
    use_cache: bool = True,
    verify: bool = False,
) -> tuple[np.ndarray, ShardStats]:
    """Extract one shard; returns ``(global_edges, stats)``.

    With ``use_cache`` a prior result for the same (input digest, cuts,
    resolved config) loads instead of extracting.  ``verify`` certifies
    the fresh result with :func:`verify_extraction` (maximality checked
    iff the config maximalizes) and raises :class:`ShardError` naming
    the shard on failure.
    """
    if session is not None and config is not None:
        raise ShardError("pass either session or config, not both")
    cfg = session.config if session is not None else (
        config or default_shard_config()
    ).resolved()

    if use_cache:
        cached = load_shard_result(plan, shard, cfg)
        if cached is not None:
            edges, meta = cached
            return edges, ShardStats(
                shard=shard,
                num_vertices=int(meta.get("num_vertices", 0)),
                num_edges=int(meta.get("num_edges", 0)),
                retained_edges=int(edges.shape[0]),
                seconds=float(meta.get("seconds", 0.0)),
                from_cache=True,
                engine=cfg.engine,
                verified=bool(meta.get("verified", False)),
            )

    graph = _shard_graph(plan, shard)
    lo, _hi = plan.shard_range(shard)
    start = time.perf_counter()
    own_session = session is None
    sess = session if session is not None else Extractor(cfg)
    try:
        result = sess.extract(graph)
    finally:
        if own_session:
            sess.close()
    seconds = time.perf_counter() - start

    verified = False
    if verify:
        report = verify_extraction(graph, result, check_maximal=cfg.maximalize)
        if not report.ok:
            raise ShardError(
                f"shard {shard} of {plan.num_shards} failed verification "
                f"({report}); replay: repro shard run --spill-dir "
                f"{plan.spill_dir} --shard {shard} --verify"
            )
        verified = True

    global_edges = _canonical_edges(result.edges + lo)
    meta = {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "seconds": seconds,
        "verified": verified,
        "engine": cfg.engine,
    }
    store_shard_result(plan, shard, cfg, global_edges, meta)
    return global_edges, ShardStats(
        shard=shard,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        retained_edges=int(global_edges.shape[0]),
        seconds=seconds,
        from_cache=False,
        engine=cfg.engine,
        verified=verified,
    )


def run_shards(
    plan: ShardPlan,
    *,
    config: ExtractionConfig | None = None,
    shards: list[int] | None = None,
    use_cache: bool = True,
    verify: bool = False,
) -> list[ShardStats]:
    """Extract every shard (or ``shards``) under one shared session.

    One :class:`Extractor` is spawned for the whole batch, so engines
    with worker teams pay one spawn for N shards.  Only one shard's CSR
    is live at a time.
    """
    cfg = (config or default_shard_config()).resolved()
    indices = list(range(plan.num_shards)) if shards is None else list(shards)
    stats: list[ShardStats] = []
    with Extractor(cfg) as session:
        for shard in indices:
            _edges, st = extract_shard(
                plan, shard, session=session, use_cache=use_cache, verify=verify
            )
            stats.append(st)
    return stats


class _UnionFind:
    """Array union-find with path halving over the stitched components."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra


def stitch_shards(
    plan: ShardPlan,
    *,
    config: ExtractionConfig | None = None,
) -> ShardedResult:
    """Reconcile boundary edges over the union of per-shard results.

    Requires every shard's cached result (``run_shards`` first); raises
    :class:`ShardError` naming the first missing shard otherwise.  The
    boundary loop is deterministic — lexicographic candidate order,
    ascending-order BFS inside :func:`edge_addable` — so the stitched
    edge set is a pure function of (spills, per-shard results).
    """
    cfg = (config or default_shard_config()).resolved()
    shard_edges: list[np.ndarray] = []
    stats: list[ShardStats] = []
    for shard in range(plan.num_shards):
        cached = load_shard_result(plan, shard, cfg)
        if cached is None:
            raise ShardError(
                f"no cached result for shard {shard} of {plan.num_shards} in "
                f"{plan.results_dir} — run `repro shard run --spill-dir "
                f"{plan.spill_dir}` first (results are config-keyed; the run "
                "and stitch must use the same regime)"
            )
        edges, meta = cached
        shard_edges.append(edges)
        stats.append(
            ShardStats(
                shard=shard,
                num_vertices=int(meta.get("num_vertices", 0)),
                num_edges=int(meta.get("num_edges", 0)),
                retained_edges=int(edges.shape[0]),
                seconds=float(meta.get("seconds", 0.0)),
                from_cache=True,
                engine=cfg.engine,
                verified=bool(meta.get("verified", False)),
            )
        )

    n = plan.num_vertices
    adj: list[set[int]] = [set() for _ in range(n)]
    uf = _UnionFind(n)
    stamp = np.zeros(n, dtype=np.int64)  # indexed by component root
    for edges in shard_edges:
        for u, v in edges:
            u, v = int(u), int(v)
            adj[u].add(v)
            adj[v].add(u)
            uf.union(u, v)

    boundary = load_boundary_edges(plan)
    # Rejection bookkeeping is numpy-backed and index-aligned with
    # ``boundary`` — at the boundary volumes sharding targets, a
    # tuple-keyed dict plus a list of pair tuples would cost hundreds of
    # bytes per edge and dominate the memory budget spilling protects.
    tested_at = np.full(boundary.shape[0], -1, dtype=np.int64)
    alive = np.arange(boundary.shape[0], dtype=np.int64)
    admitted_rows: list[int] = []
    version = 0
    rounds = 0
    while alive.size:
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise ShardError(
                f"boundary reconciliation exceeded {_MAX_ROUNDS} rounds in "
                f"{plan.spill_dir} — internal bug (each round must admit)"
            )
        admitted_before = len(admitted_rows)
        still = np.empty(alive.size, dtype=np.int64)
        num_still = 0
        # Materialise Python ints one chunk at a time: a full-boundary
        # .tolist() would transiently cost ~50 bytes/edge per round.
        for start in range(0, alive.size, _STITCH_CHUNK):
            chunk = alive[start : start + _STITCH_CHUNK]
            us = boundary[chunk, 0].tolist()
            vs = boundary[chunk, 1].tolist()
            for pos, row in enumerate(chunk.tolist()):
                u, v = us[pos], vs[pos]
                ru = uf.find(u)
                if ru != uf.find(v):
                    addable = True  # different components: no chord to lose
                elif tested_at[row] >= stamp[ru]:
                    # Component unchanged since this edge was rejected:
                    # edge_addable would walk the identical subgraph.
                    still[num_still] = row
                    num_still += 1
                    continue
                elif not (adj[u] & adj[v]):
                    # Same component, no common neighbour: H - (N(u) ∩ N(v))
                    # is H itself, where u and v are connected — reject
                    # without the BFS (which in exactly this case would
                    # have to scan the whole component).
                    addable = False
                else:
                    addable = edge_addable(adj, u, v)
                if addable:
                    adj[u].add(v)
                    adj[v].add(u)
                    version += 1
                    root = uf.union(u, v)
                    stamp[root] = version
                    admitted_rows.append(row)
                else:
                    tested_at[row] = int(stamp[ru])
                    still[num_still] = row
                    num_still += 1
        alive = still[:num_still].copy()
        if len(admitted_rows) == admitted_before:
            break  # fixpoint: every survivor certified vs the final subgraph

    admitted_arr = boundary[np.asarray(admitted_rows, dtype=np.int64)]
    rejected_arr = boundary[alive]
    all_edges = [e for e in shard_edges if e.size] + (
        [admitted_arr] if admitted_arr.size else []
    )
    final = (
        _canonical_edges(np.vstack(all_edges))
        if all_edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return ShardedResult(
        edges=final,
        num_vertices=n,
        plan=plan,
        shard_stats=tuple(stats),
        boundary_edges=int(boundary.shape[0]),
        rounds=rounds,
        admitted=admitted_arr,
        rejected=rejected_arr,
    )


def extract_sharded(
    input_path: str | Path,
    *,
    num_shards: int,
    spill_dir: str | Path,
    format: str | None = None,
    config: ExtractionConfig | None = None,
    use_cache: bool = True,
    verify_shards: bool = False,
) -> ShardedResult:
    """One-shot out-of-core extraction: plan, run every shard, stitch."""
    plan, _reused = build_plan(
        input_path, num_shards, spill_dir, format=format
    )
    stats = run_shards(
        plan, config=config, use_cache=use_cache, verify=verify_shards
    )
    result = stitch_shards(plan, config=config)
    # stitch reloads every shard from cache; keep the run phase's stats
    # (fresh-vs-cached and timing) for reporting.
    return dataclasses.replace(result, shard_stats=tuple(stats))


#: ``find_hole`` is a quadratic diagnostic (it BFSes per non-adjacent
#: neighbour pair, and a *chordal* graph is its worst case); above this
#: vertex count a chordality failure is reported without the explicit
#: cycle instead of stalling the certification for minutes.
_HOLE_DIAGNOSIS_MAX_VERTICES = 1 << 14


def certify_stitched(
    result: ShardedResult,
    *,
    samples: int = 64,
    seed: int = 0,
) -> list[str]:
    """Certify a stitched result; returns problem strings (empty = pass).

    Chordality is checked with :func:`is_chordal` (linear-time MCS + PEO
    — scales to out-of-core results); the explicit hole is extracted for
    the failure message only on graphs small enough for
    :func:`find_hole`'s pair-wise BFS scan.  The sampled boundary seam
    certificates from :func:`sampled_boundary_report` are appended.
    """
    problems: list[str] = []
    subgraph = result.subgraph()
    if not is_chordal(subgraph):
        if subgraph.num_vertices <= _HOLE_DIAGNOSIS_MAX_VERTICES:
            problems.append(
                f"stitched result is not chordal; hole: {find_hole(subgraph)}"
            )
        else:
            problems.append(
                "stitched result is not chordal (too large for hole "
                f"extraction; replay: repro shard stitch --spill-dir "
                f"{result.plan.spill_dir} --certify)"
            )
    report = sampled_boundary_report(result, samples=samples, seed=seed)
    problems.extend(report["maximality_violations"])
    problems.extend(report["hole_violations"])
    return problems


def sampled_boundary_report(
    result: ShardedResult,
    *,
    samples: int = 64,
    seed: int = 0,
) -> dict:
    """Spot-check the stitched seam; returns a JSON-able report.

    Two certificates, both sampled deterministically from ``seed``:

    * **maximality** — rejected boundary edges must still be
      non-addable against the final subgraph (the fixpoint already
      guarantees this; the sample re-derives it independently so a
      stitching bug cannot self-certify);
    * **holes** — the 2-hop neighbourhood of sampled boundary endpoints
      must be hole-free.  A hole in an induced subgraph is a genuine
      hole in the stitched result, so any hit disproves chordality at
      the exact seam the distributed baseline gets wrong.

    Violations carry a replay tag with the spill dir, seed, and edge.
    """
    rng = np.random.default_rng(seed)
    adj: list[set[int]] = [set() for _ in range(result.num_vertices)]
    for u, v in result.edges:
        adj[int(u)].add(int(v))
        adj[int(v)].add(int(u))

    rejected = result.rejected
    k = min(samples, rejected.shape[0])
    picks = (
        rng.choice(rejected.shape[0], size=k, replace=False) if k else np.empty(0)
    )
    maximality_violations = []
    for i in sorted(int(p) for p in picks):
        u, v = int(rejected[i, 0]), int(rejected[i, 1])
        if edge_addable(adj, u, v):
            maximality_violations.append(
                f"rejected boundary edge ({u}, {v}) is addable to the "
                f"stitched result; replay: spill_dir={result.plan.spill_dir} "
                f"seed={seed} sample={i}"
            )

    boundary_vertices = np.unique(
        np.concatenate([rejected.ravel(), result.admitted.ravel()])
    )
    j = min(samples, boundary_vertices.size)
    vertex_picks = (
        rng.choice(boundary_vertices.size, size=j, replace=False)
        if j
        else np.empty(0)
    )
    subgraph = result.subgraph() if result.edges.size else None
    hole_violations = []
    holes_checked = 0
    for i in sorted(int(p) for p in vertex_picks):
        center = int(boundary_vertices[i])
        hood = {center}
        for x in adj[center]:
            hood.add(x)
            hood.update(adj[x])
        if len(hood) < 4 or subgraph is None:
            continue
        induced, mapping = induced_subgraph(subgraph, hood)
        holes_checked += 1
        hole = find_hole(induced)
        if hole is not None:
            cycle = [int(mapping[x]) for x in hole]
            hole_violations.append(
                f"hole {cycle} in the 2-hop neighbourhood of boundary vertex "
                f"{center}; replay: spill_dir={result.plan.spill_dir} "
                f"seed={seed} sample={i}"
            )

    return {
        "seed": seed,
        "maximality_sampled": int(k),
        "maximality_violations": maximality_violations,
        "neighbourhoods_checked": holes_checked,
        "hole_violations": hole_violations,
        "ok": not maximality_violations and not hole_violations,
    }
