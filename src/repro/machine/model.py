"""Abstract machine model and simulation driver.

A model consumes a :class:`~repro.core.instrument.WorkTrace` — the list of
iterations, each carrying independent work items, per-category op totals
and the dependent-service critical path — and produces wall-clock
estimates for a given processor count:

``total = sum_iter( busy(iteration, P) + sync(P) )``

``busy`` is platform-specific:

* the XMT treats the iteration's work as fully divisible across
  ``P x streams`` hardware threads (fine-grained loop parallelism), but
  can never beat the latency-exposed critical path of dependent services;
* the Opteron schedules work items (LPT) onto cores, pays cache-dependent
  per-op costs, and loses a serial fraction to queue management.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.instrument import IterationTrace, WorkTrace
from repro.errors import MachineModelError

__all__ = ["MachineModel", "SimulationResult", "speedup_curve"]


@dataclass
class SimulationResult:
    """Outcome of replaying one trace at one processor count."""

    model: str
    processors: int
    total_seconds: float
    iteration_seconds: list[float] = field(default_factory=list)
    sync_seconds: float = 0.0

    @property
    def compute_seconds(self) -> float:
        return self.total_seconds - self.sync_seconds


class MachineModel(ABC):
    """Base class for hardware timing models."""

    #: display name used in experiment tables
    name: str = "abstract"
    #: maximum processor count of the modeled installation
    max_processors: int = 1

    @abstractmethod
    def busy_seconds(self, it: IterationTrace, processors: int, trace: WorkTrace) -> float:
        """Wall time to retire one iteration's work on ``processors``."""

    @abstractmethod
    def sync_seconds(self, processors: int) -> float:
        """Per-iteration synchronisation overhead (barrier + loop startup)."""

    # ------------------------------------------------------------------
    def simulate(self, trace: WorkTrace, processors: int) -> SimulationResult:
        """Replay all iterations of ``trace`` at the given processor count."""
        if processors < 1:
            raise MachineModelError(f"processors must be >= 1, got {processors}")
        if processors > self.max_processors:
            raise MachineModelError(
                f"{self.name} has {self.max_processors} processors, requested {processors}"
            )
        per_iter: list[float] = []
        sync_total = 0.0
        for it in trace.iterations:
            sync = self.sync_seconds(processors)
            per_iter.append(self.busy_seconds(it, processors, trace) + sync)
            sync_total += sync
        return SimulationResult(
            model=self.name,
            processors=processors,
            total_seconds=float(sum(per_iter)),
            iteration_seconds=per_iter,
            sync_seconds=sync_total,
        )


def speedup_curve(
    model: MachineModel, trace: WorkTrace, processor_counts: list[int]
) -> dict[int, float]:
    """``{P: T(1)/T(P)}`` over the requested processor counts."""
    base = model.simulate(trace, 1).total_seconds
    out: dict[int, float] = {}
    for p in processor_counts:
        t = model.simulate(trace, p).total_seconds
        out[p] = base / t if t > 0 else float("inf")
    return out
