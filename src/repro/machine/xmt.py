"""Cray XMT timing model.

Hardware sketch (paper Section IV-A): 128 Threadstorm processors, 128
hardware streams each (the paper requests ~100 per processor), 500 MHz
clock, 21-stage pipeline issuing one instruction per cycle from a ready
stream, globally hashed memory with ~600-cycle average latency, no data
caches — latency is tolerated purely by thread-level concurrency.

Model (work is *fully divisible*: the paper's implementation parallelises
at edge granularity, so even a hub's adjacency scan spreads over streams):

* **issue bound**:      ``W * cpi / P`` cycles — each processor issues one
  instruction per cycle;
* **throughput bound**: ``W * mem_latency / (P * streams * lookahead)`` —
  every op carries a memory reference whose latency must be covered by
  concurrent streams, each sustaining ``lookahead`` outstanding refs;
* **critical path**:    ``crit_ops * mem_latency / lookahead`` — dependent
  services (a vertex consuming parent after parent, each advance touching
  hashed remote memory) serialise and expose the full latency.  This is
  the term behind the paper's RMAT-B/gene-network behaviour and behind
  "Opt is nearly twice as fast as Unopt for RMAT-B" (the O(deg) advance
  sits on the chain).

Every op costs the same on the XMT — there are no caches to make the
sequential Unopt rescan cheap, which is exactly why the two platforms
diverge in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrument import IterationTrace, WorkTrace
from repro.errors import MachineModelError
from repro.machine.model import MachineModel

__all__ = ["CrayXMTModel"]


@dataclass
class CrayXMTModel(MachineModel):
    """Timing model of the 128-processor Cray XMT used in the paper."""

    clock_hz: float = 500e6
    max_processors: int = 128
    streams_per_processor: int = 100
    lookahead: int = 8
    mem_latency_cycles: float = 600.0
    cycles_per_op: float = 3.0
    chain_cycles_per_op: float = 20.0
    barrier_base_cycles: float = 2_500.0
    barrier_per_processor_cycles: float = 15.0
    loop_startup_cycles: float = 2_500.0
    name: str = "XMT"

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise MachineModelError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.max_processors < 1:
            raise MachineModelError("max_processors must be >= 1")
        if self.streams_per_processor < 1:
            raise MachineModelError("streams_per_processor must be >= 1")
        if self.lookahead < 1:
            raise MachineModelError("lookahead must be >= 1")

    def busy_seconds(self, it: IterationTrace, processors: int, trace: WorkTrace) -> float:
        work = it.total_work
        if work <= 0:
            return 0.0
        concurrency = processors * self.streams_per_processor * self.lookahead
        issue = work * self.cycles_per_op / processors
        throughput = work * self.mem_latency_cycles / concurrency
        # Chain ops pay partial latency: successive dependent services
        # overlap their independent loads (lookahead) and the paper's
        # dataflow synchronisation lets the next service begin while the
        # previous drains, hence a flat calibrated per-op chain charge.
        critical = it.critical_path_ops * self.chain_cycles_per_op
        return max(issue, throughput, critical) / self.clock_hz

    def sync_seconds(self, processors: int) -> float:
        cycles = (
            self.barrier_base_cycles
            + self.barrier_per_processor_cycles * processors
            + self.loop_startup_cycles
        )
        return cycles / self.clock_hz
