"""AMD Opteron (Magny-Cours) timing model.

Hardware sketch (paper Section IV-A): 4 sockets x 12 cores at ~2.2 GHz;
each 12-core package is two 6-core dies with 12 MB L3 per die (96 MB L3
total), HyperTransport interconnect, one thread per core.

Model: work items (one per Q1 vertex) are scheduled LPT onto cores, as an
OpenMP guided loop would.  Per-op cost depends on the op *category*:

* **sequential ops** (adjacency scans, Unopt parent rescans) stream
  through the cache — after the first touch the line is resident, so the
  unoptimized variant costs nearly the same as the optimized one here.
  This is the mechanism behind the paper's "the differences between
  optimized and unoptimized algorithms was insignificant [on Opteron]".
* **random ops** (subset-test probes, queue updates) pay a cache-miss
  blend ``base + miss_rate * penalty`` where ``miss_rate`` grows as the
  working set spills L3 — the irregular-access penalty the paper
  highlights for cache-based machines.

A per-iteration **serial fraction** models the contended queue management
(Q2 set insertion, queue swap), which is what keeps the paper's Opteron
speedups in the 5-8x range at 32 cores; the critical path is also
respected (cheap here, decisive on the XMT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrument import IterationTrace, WorkTrace
from repro.errors import MachineModelError
from repro.machine.model import MachineModel
from repro.parallel.partition import lpt_assign

__all__ = ["OpteronModel"]


@dataclass
class OpteronModel(MachineModel):
    """Timing model of the 48-core AMD Magny-Cours server used in the paper."""

    clock_hz: float = 2.2e9
    max_processors: int = 48
    seq_cycles_per_op: float = 0.3
    rand_base_cycles_per_op: float = 4.0
    miss_penalty_cycles: float = 160.0
    miss_rate_floor: float = 0.03
    miss_rate_ceiling: float = 0.8
    l3_bytes: float = 96e6
    bytes_per_vertex: float = 48.0
    bytes_per_edge: float = 16.0
    serial_fraction: float = 0.10
    barrier_base_cycles: float = 9_000.0
    barrier_per_processor_cycles: float = 150.0
    name: str = "AMD"

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise MachineModelError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.max_processors < 1:
            raise MachineModelError("max_processors must be >= 1")
        if not 0 <= self.miss_rate_floor <= self.miss_rate_ceiling <= 1:
            raise MachineModelError("miss rate bounds must satisfy 0 <= floor <= ceiling <= 1")
        if not 0 <= self.serial_fraction < 1:
            raise MachineModelError("serial_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    def miss_rate(self, trace: WorkTrace) -> float:
        """Cache-miss probability of a random access for this working set."""
        working_set = (
            trace.num_vertices * self.bytes_per_vertex
            + 2.0 * trace.num_edges * self.bytes_per_edge
        )
        if working_set <= 0:
            return self.miss_rate_floor
        raw = 1.0 - self.l3_bytes / working_set
        return float(min(max(raw, self.miss_rate_floor), self.miss_rate_ceiling))

    def rand_cycles_per_op(self, trace: WorkTrace) -> float:
        """Effective cycles per random-access op for this input."""
        return self.rand_base_cycles_per_op + self.miss_rate(trace) * self.miss_penalty_cycles

    def _iteration_cycles_serial(self, it: IterationTrace, trace: WorkTrace) -> float:
        """Total cycles of one iteration on one core (category-weighted)."""
        seq_ops = it.scan_ops + it.advance_ops
        rand_ops = it.subset_comparisons + it.queue_ops
        return seq_ops * self.seq_cycles_per_op + rand_ops * self.rand_cycles_per_op(trace)

    def busy_seconds(self, it: IterationTrace, processors: int, trace: WorkTrace) -> float:
        total_cycles = self._iteration_cycles_serial(it, trace)
        if total_cycles <= 0:
            return 0.0
        if processors == 1:
            return total_cycles / self.clock_hz
        # Scale item costs so their sum matches the category-weighted total,
        # then LPT-schedule them; add the serial queue-management fraction.
        items = it.work_items
        work = it.total_work
        scale = total_cycles / work if work > 0 else 0.0
        loads, _ = lpt_assign(items, processors)
        worst = float(loads.max()) * scale if items.size else 0.0
        serial = self.serial_fraction * total_cycles
        parallel = (1.0 - self.serial_fraction) * worst
        critical = it.critical_path_ops * scale if work > 0 else 0.0
        return max(serial + parallel, critical) / self.clock_hz

    def sync_seconds(self, processors: int) -> float:
        cycles = self.barrier_base_cycles + self.barrier_per_processor_cycles * processors
        return cycles / self.clock_hz
