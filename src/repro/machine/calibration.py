"""Default calibrated model instances.

The constants below were chosen so that replaying our laptop-scale traces
reproduces the *shapes* of the paper's Figures 4-6 and Table II:

* XMT single-processor runs are several times slower than a single Opteron
  core on the same input (paper Figure 6);
* RMAT-ER / RMAT-G scale well on the XMT (paper: speedups in the 28-48
  range at 128 processors) while RMAT-B saturates earlier (16-36), because
  its hub work items hit the critical-item bound;
* Opteron speedups sit in the 4.8-8 range at 32 cores, barrier-limited;
* the small gene networks barely speed up on the XMT (1.1-2.1) but reach
  ~3x on the Opteron.

Absolute seconds are *not* calibrated (our graphs are 2^10-2^16 vertices,
the paper's 2^24-2^26) — EXPERIMENTS.md records paper-vs-measured for the
shape criteria above.
"""

from __future__ import annotations

from repro.machine.opteron import OpteronModel
from repro.machine.xmt import CrayXMTModel

__all__ = ["XMT_DEFAULT", "OPTERON_DEFAULT", "default_xmt", "default_opteron"]

#: Shared default XMT instance (do not mutate; make a copy to customise).
XMT_DEFAULT = CrayXMTModel()

#: Shared default Opteron instance (do not mutate; make a copy to customise).
OPTERON_DEFAULT = OpteronModel()


def default_xmt() -> CrayXMTModel:
    """Fresh default-calibrated XMT model (safe to customise)."""
    return CrayXMTModel()


def default_opteron() -> OpteronModel:
    """Fresh default-calibrated Opteron model (safe to customise)."""
    return OpteronModel()
