"""Machine models: replaying work traces on modeled XMT / Opteron hardware.

This package is the substitution (DESIGN.md §3) for the paper's two
platforms, which cannot be timed from CPython (GIL + single-core host):
the *algorithmic* quantities — per-iteration independent work items, their
costs, queue sizes, iteration counts — are measured exactly by running the
real algorithm instrumented; only the mapping from operations to seconds
is modeled.

* :class:`~repro.machine.xmt.CrayXMTModel` — slow clock, ~600-cycle
  uniformly-hashed memory, latency hidden by massive multithreading
  (100 streams/processor requested, as in the paper), expensive
  full-machine synchronisation.
* :class:`~repro.machine.opteron.OpteronModel` — fast clock, cache
  hierarchy (works well until the working set spills L3), cheap barriers,
  no latency tolerance beyond a few outstanding misses.

All constants live in :mod:`repro.machine.calibration` and are fitted to
reproduce the paper's *shapes* (who wins where, saturation points), not
absolute numbers — see EXPERIMENTS.md.
"""

from repro.machine.model import MachineModel, SimulationResult, speedup_curve
from repro.machine.xmt import CrayXMTModel
from repro.machine.opteron import OpteronModel
from repro.machine.calibration import XMT_DEFAULT, OPTERON_DEFAULT, default_xmt, default_opteron

__all__ = [
    "MachineModel",
    "SimulationResult",
    "speedup_curve",
    "CrayXMTModel",
    "OpteronModel",
    "XMT_DEFAULT",
    "OPTERON_DEFAULT",
    "default_xmt",
    "default_opteron",
]
