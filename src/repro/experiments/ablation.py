"""Ablations over the design choices DESIGN.md calls out (our addition).

Three questions the paper leaves open, answered empirically:

1. **Schedule sensitivity** — asynchronous (paper-matching live sweep) vs
   synchronous (barrier per parent): iteration counts, edge yields, and
   whether outputs differ (both are valid chordal subgraphs).
2. **Ordering sensitivity** — natural ids vs BFS renumbering: effect on
   output connectivity (Theorem 2's hypothesis) and edge yield.
3. **Distributed baseline** — partition count vs border-edge volume and
   chordality of the combined result (why the paper abandoned the
   distributed approach).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.distributed import distributed_nearly_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import DEFAULT_SEED, build_graph_cached, rmat_spec
from repro.graph.bfs import connected_components

__all__ = ["run"]


def run(scale: int = 10, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run all three ablations on one RMAT-G instance."""
    spec = rmat_spec("RMAT-G", scale, seed)
    graph = build_graph_cached(spec)
    rows: list[list] = []

    # 1. schedule
    r_async = extract_maximal_chordal_subgraph(graph, schedule="asynchronous")
    r_sync = extract_maximal_chordal_subgraph(graph, schedule="synchronous")
    same = np.array_equal(r_async.edges, r_sync.edges)
    rows.append(
        ["schedule=async", r_async.num_iterations, r_async.num_chordal_edges, "-"]
    )
    rows.append(
        [
            "schedule=sync",
            r_sync.num_iterations,
            r_sync.num_chordal_edges,
            "same edges" if same else "different edges",
        ]
    )

    # 2. ordering
    for renumber, label in ((None, "order=natural"), ("bfs", "order=bfs")):
        r = extract_maximal_chordal_subgraph(graph, renumber=renumber)
        ncomp = connected_components(r.subgraph)[0]
        rows.append([label, r.num_iterations, r.num_chordal_edges, f"{ncomp} components"])

    # 3. distributed baseline
    for parts in (2, 4, 8):
        d = distributed_nearly_chordal(graph, parts, seed=seed)
        rows.append(
            [
                f"distributed p={parts}",
                d.border_edges,
                d.num_edges,
                "chordal" if d.chordal else "NOT chordal",
            ]
        )

    return ExperimentResult(
        experiment_id="ablation",
        title=f"Design ablations on RMAT-G({scale})",
        headers=["Configuration", "Iters/Border", "Edges", "Note"],
        rows=rows,
        notes=[
            "async vs sync may select different (both valid) chordal subgraphs",
            "BFS ordering drives output connectivity (Theorem 2 hypothesis)",
            "the distributed triangle heuristic usually breaks chordality — "
            "the paper's motivation for the multithreaded redesign",
        ],
    )
