"""Measured (not modeled) strong-scaling of the process engine.

Every other scaling artifact in this reproduction replays an instrumented
work trace on the calibrated Cray XMT / Opteron machine models, because
the GIL-bound ``threaded`` engine cannot speed anything up on CPython.
This experiment is the real thing: it times the ``process`` engine's
shared-memory worker team on the host's actual cores and reports a
Figure-4-style wall-clock curve, next to the serial synchronous baselines
(the literal ``reference`` engine — the seed implementation style, dicts
and sets — and the vectorized kernel engine; the historical Python pair
loop was absorbed into the unified runtime, which always runs the
kernels).

On a single-core host the worker sweep degenerates to coordination
overhead — the honest result — while the kernel-vs-reference row still
shows the vectorization speedup.  ``notes`` records the core count so
recorded runs are interpretable.
"""

from __future__ import annotations

import os

from repro.core.procpool import ProcessPool
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import DEFAULT_SEED, build_graph_cached, rmat_spec
from repro.util.timing import best_of

__all__ = ["run", "measure_engines"]

#: Worker sweep (kept modest: forks are per-pool, not per-superstep).
DEFAULT_WORKERS = (1, 2, 4)


def measure_engines(graph, workers=DEFAULT_WORKERS, repeats: int = 2) -> dict:
    """The measurement protocol, shared with ``benchmarks/bench_scaling.py``.

    Best-of-``repeats`` wall-clock seconds of synchronous extraction on
    ``graph`` for the literal reference engine (``"reference"`` — the
    seed implementation style), the vectorized serial engine
    (``"kernels"``) and the process engine at each worker count
    (``"process"``: ``{W: seconds}``, warm-up extraction excluded), plus
    ``"speedup"`` ratios relative to the reference engine.
    """
    t_ref = best_of(
        lambda: reference_max_chordal(graph, schedule="synchronous"), repeats
    )
    t_vec = best_of(
        lambda: superstep_max_chordal(graph, schedule="synchronous"), repeats
    )
    proc: dict[int, float] = {}
    for w in workers:
        with ProcessPool(graph, num_workers=w) as pool:
            pool.extract()  # warm-up: fault in the shared segment
            proc[w] = best_of(pool.extract, repeats)
    speedup = {"kernels": t_ref / t_vec}
    speedup.update({f"process@{w}": t_ref / t for w, t in proc.items()})
    return {"reference": t_ref, "kernels": t_vec, "process": proc, "speedup": speedup}


def run(
    scales=(9, 10),
    kinds=("RMAT-ER", "RMAT-B"),
    workers=DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
    repeats: int = 2,
) -> ExperimentResult:
    """Measure wall-clock synchronous extraction across engines and workers.

    Series: ``{kind}/S{scale}/process`` maps worker count to seconds;
    rows add the serial reference/kernel baselines and the speedup of the
    best process configuration over the reference engine (the seed
    implementation style).
    """
    workers = tuple(workers)
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    for kind in kinds:
        for scale in scales:
            graph = build_graph_cached(rmat_spec(kind, scale, seed))
            m = measure_engines(graph, workers=workers, repeats=repeats)
            points = [(w, m["process"][w]) for w in workers]
            series[f"{kind}/S{scale}/process"] = points
            best_proc = min(m["process"].values())
            rows.append(
                [
                    f"{kind}({scale})",
                    round(m["reference"] * 1e3, 3),
                    round(m["kernels"] * 1e3, 3),
                    round(points[0][1] * 1e3, 3),
                    round(best_proc * 1e3, 3),
                    round(m["reference"] / best_proc, 2),
                ]
            )
    return ExperimentResult(
        experiment_id="scaling_measured",
        title="Measured process-engine scaling (wall clock, this host)",
        headers=[
            "Graph",
            "reference ms",
            "kernels ms",
            f"proc@{workers[0]} ms",
            "proc@best ms",
            "speedup vs reference",
        ],
        rows=rows,
        series=series,
        notes=[
            f"host cores: {os.cpu_count()}",
            f"workers swept: {tuple(workers)}; best of {repeats} repeats",
            "reference = literal pseudocode engine (seed style); "
            "kernels = vectorized serial",
        ],
    )
