"""CLI for the experiment harness.

Usage::

    python -m repro.experiments table1 [--scales 10,11,12] [--seed N]
    python -m repro.experiments all
    repro-experiments fig7 --bio-fraction 0.015625
    repro experiments table1 --scales 8,9   # via the unified CLI

Each experiment prints its table and/or series in the format recorded in
EXPERIMENTS.md.  The unified ``repro`` CLI (:mod:`repro.cli`) forwards
its ``experiments`` subcommand here verbatim.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, get_experiment, list_experiments

__all__ = ["main"]


def _parse_scales(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(s) for s in text.split(",") if s.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad scale list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; one of: {', '.join(list_experiments())}",
    )
    parser.add_argument("--scales", type=_parse_scales, default=None,
                        help="comma-separated R-MAT scales (e.g. 12,13,14)")
    parser.add_argument("--scale", type=int, default=None,
                        help="single scale (fig2/fig3/fig6/ablation)")
    parser.add_argument("--bio-fraction", type=float, default=None,
                        help="linear scale of the GEO replicas (e.g. 0.015625)")
    parser.add_argument("--seed", type=int, default=None, help="suite RNG seed")
    return parser


def _kwargs_for(experiment_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    import inspect

    signature = inspect.signature(REGISTRY[experiment_id])
    if args.scales is not None and "scales" in signature.parameters:
        kwargs["scales"] = args.scales
    if args.scale is not None and "scale" in signature.parameters:
        kwargs["scale"] = args.scale
    if args.bio_fraction is not None and "bio_fraction" in signature.parameters:
        kwargs["bio_fraction"] = args.bio_fraction
    if args.seed is not None and "seed" in signature.parameters:
        kwargs["seed"] = args.seed
    return kwargs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        run = get_experiment(experiment_id)
        start = time.perf_counter()
        result = run(**_kwargs_for(experiment_id, args))
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.2f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
