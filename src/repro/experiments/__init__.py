"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(**params) -> ExperimentResult`` and is
registered in :mod:`repro.experiments.registry`; the CLI
(``python -m repro.experiments <id>``) and the benchmark suite
(``benchmarks/``) are thin wrappers over these functions.

Index (see DESIGN.md §4 and EXPERIMENTS.md for paper-vs-measured):

========  ==========================================================
id        artifact
========  ==========================================================
table1    Table I   — test-suite graph properties
table2    Table II  — speedups at 128 XMT procs / 32 AMD cores
fig2      Figure 2  — avg clustering coefficient vs #neighbors
fig3      Figure 3  — shortest-path length distribution
fig4      Figure 4  — synthetic-graph scaling on XMT and Opteron
fig5      Figure 5  — gene-network scaling on XMT and Opteron
fig6      Figure 6  — relative XMT vs Opteron performance
fig7      Figure 7  — queue sizes and iteration counts
chordal_fraction — §V text: percentage of chordal edges
maximality_gap   — erratum: Theorem 2 gap quantified (ours)
ablation         — schedule/engine/stitching ablations (ours)
========  ==========================================================
"""

from repro.experiments.report import ExperimentResult, format_table, format_series
from repro.experiments.registry import REGISTRY, get_experiment, list_experiments

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_series",
    "REGISTRY",
    "get_experiment",
    "list_experiments",
]
