"""``python -m repro.experiments`` entry point."""

import sys

from repro.experiments.runner import main

sys.exit(main())
