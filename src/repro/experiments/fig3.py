"""Figure 3 — distribution of shortest-path lengths.

Paper panels: RMAT-ER-10 (lengths 1-5, sharply peaked at 3), RMAT-B-10
(1-7), GSE5140(UNT) (1-19, the widest).  Shape criterion: bio spread >>
RMAT-B spread > RMAT-ER spread, evidencing well-separated dense
components connected through long sparse regions.
"""

from __future__ import annotations

from repro.analysis.paths import shortest_path_histogram
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_SEED,
    GraphSpec,
    build_graph_cached,
    rmat_spec,
)

__all__ = ["run"]


def run(
    scale: int = 10,
    bio_fraction: float = 1.0 / 16.0,
    sample: int | None = 512,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Regenerate the three histograms (unordered-pair counts)."""
    specs = [
        rmat_spec("RMAT-ER", scale, seed),
        rmat_spec("RMAT-B", scale, seed),
        GraphSpec(
            name="GSE5140(UNT)", kind="bio", preset="GSE5140(UNT)",
            fraction=bio_fraction, seed=seed,
        ),
    ]
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    for spec in specs:
        graph = build_graph_cached(spec)
        hist = shortest_path_histogram(graph, sample=sample, seed=seed) / 2.0
        pts = [
            (length, float(freq))
            for length, freq in enumerate(hist)
            if length >= 1 and freq > 0
        ]
        series[spec.name] = pts
        max_len = max((length for length, _f in pts), default=0)
        mode = max(pts, key=lambda t: t[1])[0] if pts else 0
        rows.append([spec.name, max_len, mode])
    return ExperimentResult(
        experiment_id="fig3",
        title="Distribution of shortest-path lengths (paper Fig 3)",
        headers=["Graph", "MaxLength", "ModeLength"],
        rows=rows,
        series=series,
        notes=[
            "paper max lengths: RMAT-ER-10 = 5, RMAT-B-10 = 7, GSE5140(UNT) = 19",
            f"histogram sampled from {sample} BFS sources and extrapolated"
            if sample else "exact all-pairs histogram",
        ],
    )
