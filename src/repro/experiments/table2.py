"""Table II — speedups on XMT (128 processors) and Opteron (32 cores).

Paper columns: Group, XMT(UnOpt), XMT(Opt), AMD(UnOpt); speedups relative
to single-processor performance *on the same platform*.  Shape criteria:
R-MAT speedups are tens on the XMT and single digits on the Opteron,
RMAT-B trails the other synthetics, and the small gene networks barely
speed up anywhere.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_BIO_FRACTION,
    DEFAULT_SCALES,
    DEFAULT_SEED,
    bio_specs,
    rmat_specs,
    trace_for,
)
from repro.machine.calibration import default_opteron, default_xmt

__all__ = ["run"]

HEADERS = ["Group", "XMT(UnOpt)", "XMT(Opt)", "AMD(UnOpt)"]


def run(
    scales=DEFAULT_SCALES,
    bio_fraction: float = DEFAULT_BIO_FRACTION,
    seed: int = DEFAULT_SEED,
    xmt_procs: int = 128,
    amd_procs: int = 32,
) -> ExperimentResult:
    """Regenerate Table II on the scaled suite via the machine models."""
    xmt = default_xmt()
    amd = default_opteron()
    rows = []
    for spec in rmat_specs(scales, seed) + bio_specs(bio_fraction, seed):
        tr_unopt = trace_for(spec, "unoptimized")
        tr_opt = trace_for(spec, "optimized")
        xmt_unopt = (
            xmt.simulate(tr_unopt, 1).total_seconds
            / xmt.simulate(tr_unopt, xmt_procs).total_seconds
        )
        xmt_opt = (
            xmt.simulate(tr_opt, 1).total_seconds
            / xmt.simulate(tr_opt, xmt_procs).total_seconds
        )
        amd_unopt = (
            amd.simulate(tr_unopt, 1).total_seconds
            / amd.simulate(tr_unopt, amd_procs).total_seconds
        )
        rows.append([spec.name, round(xmt_unopt, 2), round(xmt_opt, 2), round(amd_unopt, 2)])
    return ExperimentResult(
        experiment_id="table2",
        title=f"Speedup at {xmt_procs} XMT procs / {amd_procs} AMD cores (paper Table II)",
        headers=HEADERS,
        rows=rows,
        notes=[
            "speedups via machine-model replay of measured work traces (DESIGN.md §3)",
            f"R-MAT scales {tuple(scales)}, bio fraction {bio_fraction:g}",
        ],
    )
