"""Figure 4 — scaling of the synthetic graphs on XMT and Opteron.

Paper layout: six panels — (RMAT-ER, RMAT-G, RMAT-B) x (XMT, Opteron) —
each with strong-scaling curves (time vs processors, log-log) for three
scales and both variants (XMT) / the unoptimized variant (Opteron).

Shape criteria: near-linear descent on XMT for ER/G with flattening at
full machine; RMAT-B flattens earliest; Opteron curves descend to 32
cores with a shallower slope; weak scaling (reading across scales at
fixed processor count) roughly doubles time per scale step.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    AMD_PROCS,
    DEFAULT_SCALES,
    DEFAULT_SEED,
    XMT_PROCS,
    rmat_spec,
    trace_for,
)
from repro.machine.calibration import default_opteron, default_xmt

__all__ = ["run"]


def run(
    scales=DEFAULT_SCALES,
    kinds=("RMAT-ER", "RMAT-G", "RMAT-B"),
    seed: int = DEFAULT_SEED,
    xmt_procs=XMT_PROCS,
    amd_procs=AMD_PROCS,
) -> ExperimentResult:
    """Regenerate all Figure 4 series as ``{series: [(procs, seconds)]}``.

    Series naming follows the paper's legends: ``RMAT-B/XMT/S12-Opt`` etc.
    """
    xmt = default_xmt()
    amd = default_opteron()
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    for kind in kinds:
        for scale in scales:
            spec = rmat_spec(kind, scale, seed)
            for variant, tag in (("unoptimized", "Unopt"), ("optimized", "Opt")):
                trace = trace_for(spec, variant)
                xs = [
                    (p, xmt.simulate(trace, p).total_seconds) for p in xmt_procs
                ]
                series[f"{kind}/XMT/S{scale}-{tag}"] = xs
                if variant == "unoptimized":
                    am = [
                        (p, amd.simulate(trace, p).total_seconds) for p in amd_procs
                    ]
                    series[f"{kind}/AMD/S{scale}-{tag}"] = am
                    rows.append(
                        [
                            f"{kind}({scale})",
                            tag,
                            round(xs[0][1] * 1e3, 3),
                            round(xs[-1][1] * 1e3, 3),
                            round(am[0][1] * 1e3, 3),
                            round(am[-1][1] * 1e3, 3),
                        ]
                    )
                else:
                    rows.append(
                        [
                            f"{kind}({scale})",
                            tag,
                            round(xs[0][1] * 1e3, 3),
                            round(xs[-1][1] * 1e3, 3),
                            "-",
                            "-",
                        ]
                    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Synthetic-graph scaling on XMT and Opteron (paper Fig 4)",
        headers=["Graph", "Variant", "XMT@1 ms", "XMT@max ms", "AMD@1 ms", "AMD@32 ms"],
        rows=rows,
        series=series,
        notes=[
            f"scales {tuple(scales)} stand in for the paper's 24/25/26",
            "paper plots Opteron Unopt only in Fig 4; we follow that",
        ],
    )
