"""Plain-text rendering of experiment results.

The harness prints tables/series in the same row/series structure the
paper reports, so a diff against EXPERIMENTS.md is a one-glance check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table", "format_series"]


def _fmt_cell(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.001:
            return f"{x:.3g}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned fixed-width table."""
    cells = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: dict[str, list[tuple]]) -> str:
    """Render ``{name: [(x, y), ...]}`` one series per block."""
    lines: list[str] = []
    for name in sorted(series):
        lines.append(f"[{name}]")
        for x, y in series[name]:
            lines.append(f"  {_fmt_cell(x):>10}  {_fmt_cell(y)}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform result object for tables and figures.

    ``rows`` carries tabular artifacts (Table I/II style); ``series``
    carries figure artifacts (name -> (x, y) points).  ``notes`` records
    scale substitutions and deviations for EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list] = field(default_factory=list)
    series: dict[str, list[tuple]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series(self.series))
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n".join(parts)
