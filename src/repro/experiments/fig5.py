"""Figure 5 — scaling of the gene-correlation networks.

Paper layout: four panels — (GSE5140, GSE17072) x (XMT, Opteron) — with
both variants per network; the XMT sweeps 2-16 processors (the inputs
are too small for more), the Opteron 1-32 cores.

Shape criteria: shallow descent (limited speedup) everywhere; the
optimized variant is clearly faster than unoptimized on the XMT but not
on the Opteron.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    AMD_PROCS,
    DEFAULT_BIO_FRACTION,
    DEFAULT_SEED,
    bio_specs,
    trace_for,
)
from repro.machine.calibration import default_opteron, default_xmt

__all__ = ["run"]

XMT_BIO_PROCS = (2, 4, 8, 16)


def run(
    bio_fraction: float = DEFAULT_BIO_FRACTION,
    seed: int = DEFAULT_SEED,
    xmt_procs=XMT_BIO_PROCS,
    amd_procs=AMD_PROCS,
) -> ExperimentResult:
    """Regenerate all Figure 5 series as ``{series: [(procs, seconds)]}``."""
    xmt = default_xmt()
    amd = default_opteron()
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    for spec in bio_specs(bio_fraction, seed):
        for variant, tag in (("unoptimized", "Unopt"), ("optimized", "Opt")):
            trace = trace_for(spec, variant)
            xs = [(p, xmt.simulate(trace, p).total_seconds) for p in xmt_procs]
            am = [(p, amd.simulate(trace, p).total_seconds) for p in amd_procs]
            series[f"{spec.name}/XMT-{tag}"] = xs
            series[f"{spec.name}/AMD-{tag}"] = am
            rows.append(
                [
                    spec.name,
                    tag,
                    round(xs[0][1] * 1e6, 1),
                    round(xs[-1][1] * 1e6, 1),
                    round(am[0][1] * 1e6, 1),
                    round(am[-1][1] * 1e6, 1),
                ]
            )
    return ExperimentResult(
        experiment_id="fig5",
        title="Gene-network scaling on XMT and Opteron (paper Fig 5)",
        headers=["Network", "Variant", "XMT@2 us", "XMT@16 us", "AMD@1 us", "AMD@32 us"],
        rows=rows,
        series=series,
        notes=[
            f"GEO replicas at linear fraction {bio_fraction:g} "
            "(preserves the paper's bio<<synthetic size ratio)",
        ],
    )
