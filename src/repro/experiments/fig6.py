"""Figure 6 — relative performance of XMT and Opteron on the same graph.

Paper layout: two panels (RMAT-ER and RMAT-B, SCALE=24, generated once
and run on both platforms), four curves each: XMT-Unopt, XMT-Opt,
AMD-Unopt, AMD-Opt, over 1-32 processors.

Shape criteria (paper Section V, "Relative Performance"):

* RMAT-ER runs faster *and scales better* on the XMT;
* RMAT-B starts faster on the Opteron; as processors increase the
  optimized XMT curve undercuts it, while AMD stays ahead of XMT-Unopt;
* the two AMD variants nearly coincide.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import DEFAULT_SEED, rmat_spec, trace_for
from repro.machine.calibration import default_opteron, default_xmt

__all__ = ["run"]

PROCS = (1, 2, 4, 8, 16, 32)


def run(scale: int = 12, seed: int = DEFAULT_SEED, procs=PROCS) -> ExperimentResult:
    """Regenerate both panels as ``{series: [(procs, seconds)]}``."""
    xmt = default_xmt()
    amd = default_opteron()
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    for kind in ("RMAT-ER", "RMAT-B"):
        spec = rmat_spec(kind, scale, seed)
        for variant, tag in (("unoptimized", "Unopt"), ("optimized", "Opt")):
            trace = trace_for(spec, variant)
            xs = [(p, xmt.simulate(trace, p).total_seconds) for p in procs]
            am = [(p, amd.simulate(trace, p).total_seconds) for p in procs]
            series[f"{kind}/XMT-{tag}"] = xs
            series[f"{kind}/AMD-{tag}"] = am
            rows.append(
                [
                    kind,
                    tag,
                    round(xs[0][1] * 1e3, 3),
                    round(xs[-1][1] * 1e3, 3),
                    round(am[0][1] * 1e3, 3),
                    round(am[-1][1] * 1e3, 3),
                ]
            )
    return ExperimentResult(
        experiment_id="fig6",
        title="Relative XMT vs Opteron performance (paper Fig 6)",
        headers=["Graph", "Variant", "XMT@1 ms", "XMT@32 ms", "AMD@1 ms", "AMD@32 ms"],
        rows=rows,
        series=series,
        notes=[f"single graph per kind at scale {scale}, replayed on both models"],
    )
