"""The reproduction's test-suite graphs (paper Section IV-B), with caching.

Scale substitution (DESIGN.md §3): the paper's synthetic graphs use
SCALE 24-26 (up to half a billion edges); we default to SCALE 10-12 for
interactive runs and 12-14 for the scaling experiments, overridable from
the CLI.  Bio replicas default to a 1/64 linear scale for the scaling
experiments (keeping the paper's bio-much-smaller-than-synthetic size
*ratio*) and larger fractions for the structural figures.

Graphs and instrumented traces are memoised per process so that Table II
and Figures 4-7 share work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.instrument import WorkTrace
from repro.graph.csr import CSRGraph
from repro.graph.generators.bio import (
    GSE17072_CTL,
    GSE17072_NON,
    GSE5140_CRT,
    GSE5140_UNT,
    BioNetworkParams,
    bio_network,
)
from repro.graph.generators.rmat import (
    RMAT_B_PROBS,
    RMAT_ER_PROBS,
    RMAT_G_PROBS,
    RMATParams,
    rmat_graph,
)

__all__ = [
    "GraphSpec",
    "DEFAULT_SEED",
    "DEFAULT_SCALES",
    "FULL_SCALES",
    "DEFAULT_BIO_FRACTION",
    "XMT_PROCS",
    "AMD_PROCS",
    "rmat_spec",
    "rmat_specs",
    "bio_specs",
    "build_graph_cached",
    "trace_for",
    "clear_cache",
]

#: Seed used everywhere unless overridden (deterministic suite).
DEFAULT_SEED = 2012_09_10  # ICPP 2012

#: Quick interactive scales (stand-ins for the paper's 24/25/26).
DEFAULT_SCALES = (10, 11, 12)

#: Scales used for the recorded EXPERIMENTS.md runs.
FULL_SCALES = (12, 13, 14)

#: Linear scale applied to the GEO replicas in the scaling experiments.
DEFAULT_BIO_FRACTION = 1.0 / 64.0

#: Processor sweeps, matching the paper's figures.
XMT_PROCS = (1, 2, 4, 8, 16, 32, 64, 128)
AMD_PROCS = (1, 2, 4, 8, 16, 32)

_RMAT_KINDS = {
    "RMAT-ER": RMAT_ER_PROBS,
    "RMAT-G": RMAT_G_PROBS,
    "RMAT-B": RMAT_B_PROBS,
}

_BIO_PRESETS: dict[str, BioNetworkParams] = {
    "GSE5140(CRT)": GSE5140_CRT,
    "GSE5140(UNT)": GSE5140_UNT,
    "GSE17072(CTL)": GSE17072_CTL,
    "GSE17072(NON)": GSE17072_NON,
}


@dataclass(frozen=True)
class GraphSpec:
    """Identifies one reproducible test-suite graph."""

    name: str
    kind: str                 # 'rmat' or 'bio'
    rmat_kind: str = ""       # one of _RMAT_KINDS when kind == 'rmat'
    scale: int = 0
    preset: str = ""          # one of _BIO_PRESETS when kind == 'bio'
    fraction: float = 1.0
    seed: int = DEFAULT_SEED


def rmat_spec(rmat_kind: str, scale: int, seed: int = DEFAULT_SEED) -> GraphSpec:
    if rmat_kind not in _RMAT_KINDS:
        raise ValueError(f"unknown R-MAT kind {rmat_kind!r}; expected {sorted(_RMAT_KINDS)}")
    return GraphSpec(
        name=f"{rmat_kind}({scale})", kind="rmat", rmat_kind=rmat_kind, scale=scale, seed=seed
    )


def rmat_specs(scales=DEFAULT_SCALES, seed: int = DEFAULT_SEED) -> list[GraphSpec]:
    """The paper's nine synthetic instances (3 kinds x the given scales)."""
    return [rmat_spec(kind, s, seed) for kind in _RMAT_KINDS for s in scales]


def bio_specs(fraction: float = DEFAULT_BIO_FRACTION, seed: int = DEFAULT_SEED) -> list[GraphSpec]:
    """The four GEO replica networks at the given linear scale."""
    return [
        GraphSpec(name=p, kind="bio", preset=p, fraction=fraction, seed=seed)
        for p in _BIO_PRESETS
    ]


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------
_graph_cache: dict[GraphSpec, CSRGraph] = {}
_trace_cache: dict[tuple[GraphSpec, str], WorkTrace] = {}


def build_graph_cached(spec: GraphSpec) -> CSRGraph:
    """Build (or fetch) the graph for ``spec``."""
    cached = _graph_cache.get(spec)
    if cached is not None:
        return cached
    if spec.kind == "rmat":
        params = RMATParams(spec.scale, probs=_RMAT_KINDS[spec.rmat_kind], name=spec.rmat_kind)
        graph = rmat_graph(params, seed=spec.seed)
    elif spec.kind == "bio":
        params = _BIO_PRESETS[spec.preset]
        if spec.fraction < 1.0:
            params = params.scaled(spec.fraction)
        graph = bio_network(params, seed=spec.seed)
    else:
        raise ValueError(f"unknown graph kind {spec.kind!r}")
    _graph_cache[spec] = graph
    return graph


def trace_for(spec: GraphSpec, variant: str) -> WorkTrace:
    """Instrumented extraction trace for (graph, variant), memoised."""
    key = (spec, variant)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    graph = build_graph_cached(spec)
    result = extract_maximal_chordal_subgraph(
        graph, variant=variant, collect_trace=True
    )
    assert result.trace is not None
    _trace_cache[key] = result.trace
    return result.trace


def clear_cache() -> None:
    """Drop all memoised graphs and traces (tests use this)."""
    _graph_cache.clear()
    _trace_cache.clear()
