"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablation,
    chordal_fraction,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    maximality_gap,
    scaling_measured,
    table1,
    table2,
)
from repro.experiments.report import ExperimentResult

__all__ = ["REGISTRY", "get_experiment", "list_experiments"]

REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "chordal_fraction": chordal_fraction.run,
    "maximality_gap": maximality_gap.run,
    "ablation": ablation.run,
    "scaling_measured": scaling_measured.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment by id (raises ``KeyError`` with the list)."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(REGISTRY)
