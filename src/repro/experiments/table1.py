"""Table I — properties of the test-suite graphs.

Paper columns: Group, Vertices, Edges, Avg Degree, Max Degree, Variance,
Edges by Vertices.  We regenerate the same columns for the scaled suite;
the paper's headline invariants to check are (a) edges/vertices pinned
near the R-MAT edge factor (7.99 at scale 24-26), (b) the ER << G << B
ordering of max degree and variance, and (c) the bio replicas' higher
edge-to-vertex ratios (14-23).
"""

from __future__ import annotations

from repro.analysis.summary import summarize_graph
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_SCALES,
    DEFAULT_SEED,
    GraphSpec,
    bio_specs,
    build_graph_cached,
    rmat_specs,
)

__all__ = ["run"]

HEADERS = ["Group", "Vertices", "Edges", "AvgDeg", "MaxDeg", "Variance", "Edges/Vert"]


def run(
    scales=DEFAULT_SCALES,
    bio_fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    include_bio: bool = True,
) -> ExperimentResult:
    """Regenerate Table I for the scaled test suite.

    ``bio_fraction=1.0`` builds the full-size GEO replicas (45k-49k
    vertices), matching the paper's bio rows directly.
    """
    specs: list[GraphSpec] = rmat_specs(scales, seed)
    if include_bio:
        specs += bio_specs(bio_fraction, seed)
    rows = []
    for spec in specs:
        graph = build_graph_cached(spec)
        summary = summarize_graph(spec.name, graph, components=False)
        rows.append(summary.table1_row())
    notes = [
        f"R-MAT scales {tuple(scales)} stand in for the paper's 24-26",
        "bio rows are synthetic GEO replicas (DESIGN.md substitution 2)"
        + ("" if bio_fraction == 1.0 else f" at linear fraction {bio_fraction:g}"),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Properties of the test suite of graphs (paper Table I)",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
