"""Figure 7 — queue sizes and iteration counts.

Paper layout: stacked queue sizes per iteration for (a) RMAT-B at three
scales, (b) GSE5140 CRT/UNT, (c) GSE17072 CTL/NON.

Shape criteria: for R-MAT the second queue is the largest ("most of the
LPs were processed in the first and second iterations, slightly more in
the second") followed by rapid decay; the biological networks take
noticeably more iterations than the synthetic graphs despite being far
smaller.

Reproduction note: the paper reports ~3 iterations for R-MAT and ~10 for
the gene networks; the deterministic maximal-progress serialisation of
Algorithm 1 yields more (the counts are a race artifact of the chaotic
hardware execution — see EXPERIMENTS.md), but the Q2 > Q1 ordering,
rapid decay, and bio >> synthetic relation all hold.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_BIO_FRACTION,
    DEFAULT_SCALES,
    DEFAULT_SEED,
    bio_specs,
    rmat_spec,
    trace_for,
)

__all__ = ["run"]


def run(
    scales=DEFAULT_SCALES,
    bio_fraction: float = DEFAULT_BIO_FRACTION,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Regenerate the queue-size series (iteration -> |Q1|)."""
    series: dict[str, list[tuple]] = {}
    rows: list[list] = []
    specs = [rmat_spec("RMAT-B", s, seed) for s in scales] + bio_specs(bio_fraction, seed)
    for spec in specs:
        trace = trace_for(spec, "optimized")
        qs = trace.queue_sizes
        series[spec.name] = [(i + 1, q) for i, q in enumerate(qs)]
        rows.append(
            [
                spec.name,
                len(qs),
                qs[0] if qs else 0,
                qs[1] if len(qs) > 1 else 0,
                max(qs) if qs else 0,
            ]
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Queue sizes and iteration counts (paper Fig 7)",
        headers=["Graph", "Iterations", "Q1", "Q2", "QMax"],
        rows=rows,
        series=series,
        notes=[
            "paper: ~3 iterations for R-MAT, ~10 for the gene networks; "
            "Q2 slightly exceeds Q1 and later queues decay fast",
            "our deterministic serialisation yields more iterations "
            "(race artifact; see EXPERIMENTS.md) but preserves the shape relations",
        ],
    )
