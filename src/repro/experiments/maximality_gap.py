"""Maximality gap — quantifying the Theorem 2 erratum (our addition).

The paper's Theorem 2 claims a connected output of Algorithm 1 is a
*maximal* chordal subgraph; the proof is incomplete and the claim fails
on real inputs (see ``repro.core.maximalize`` and
``tests/test_theorem2_gap.py``).  This experiment measures how many edges
the certified completion pass adds on the test suite — i.e. how far from
maximal Algorithm 1's raw output is — and compares the edge yield against
the truly-maximal serial Dearing baseline.
"""

from __future__ import annotations

from repro.baselines.dearing import dearing_max_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_SEED,
    bio_specs,
    build_graph_cached,
    rmat_specs,
)

__all__ = ["run"]


def run(
    scales=(8, 9, 10),
    bio_fraction: float = 1.0 / 64.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Measure the completion-pass gap across the (small-scale) suite."""
    rows = []
    for spec in rmat_specs(scales, seed) + bio_specs(bio_fraction, seed):
        graph = build_graph_cached(spec)
        result = extract_maximal_chordal_subgraph(
            graph, renumber="bfs", maximalize=True
        )
        raw_edges = result.num_chordal_edges - result.maximality_gap
        dearing_edges = int(dearing_max_chordal(graph).shape[0])
        rows.append(
            [
                spec.name,
                graph.num_edges,
                raw_edges,
                result.maximality_gap,
                round(result.maximality_gap / max(raw_edges, 1), 4),
                dearing_edges,
            ]
        )
    return ExperimentResult(
        experiment_id="maximality_gap",
        title="Theorem 2 gap: edges the completion pass adds (erratum, ours)",
        headers=["Graph", "Edges", "Alg1Edges", "GapEdges", "GapFraction", "DearingEdges"],
        rows=rows,
        notes=[
            "GapEdges > 0 on typical inputs: Algorithm 1 alone is not maximal "
            "(paper Theorem 2 overclaims); the gap is small relative to |EC|",
            "Dearing (max-label selection) is certified maximal and typically "
            "yields the most edges",
        ],
    )
