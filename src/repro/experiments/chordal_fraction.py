"""Section V text — percentage of chordal edges.

The paper reports that the maximal chordal subgraph keeps ~11% of
RMAT-ER edges, ~10% of RMAT-G, ~6% of RMAT-B, and 4-8% of the biological
networks, with the values "nearly constant across all the three scales".

Shape criteria: ER >= G > B ordering; near-constancy across scales
(decreasing mildly toward the paper's values as scale grows, since small
scales are relatively denser); bio fractions in the same sub-10% band.
"""

from __future__ import annotations

from repro.core.extract import extract_maximal_chordal_subgraph
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_SCALES,
    DEFAULT_SEED,
    bio_specs,
    build_graph_cached,
    rmat_specs,
)

__all__ = ["run"]

#: Paper-reported fractions for reference in the rendered table.
PAPER_FRACTIONS = {
    "RMAT-ER": 0.11,
    "RMAT-G": 0.10,
    "RMAT-B": 0.06,
    "GSE5140(CRT)": 0.04,
    "GSE5140(UNT)": 0.08,
    "GSE17072(CTL)": 0.07,
    "GSE17072(NON)": 0.06,
}


def run(
    scales=DEFAULT_SCALES,
    bio_fraction: float = 1.0 / 16.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Measure |EC| / |E| across the suite."""
    rows = []
    for spec in rmat_specs(scales, seed) + bio_specs(bio_fraction, seed):
        graph = build_graph_cached(spec)
        result = extract_maximal_chordal_subgraph(graph)
        key = spec.rmat_kind if spec.kind == "rmat" else spec.preset
        rows.append(
            [
                spec.name,
                graph.num_edges,
                result.num_chordal_edges,
                round(result.chordal_fraction, 4),
                PAPER_FRACTIONS.get(key, float("nan")),
            ]
        )
    return ExperimentResult(
        experiment_id="chordal_fraction",
        title="Percentage of chordal edges (paper Section V text)",
        headers=["Graph", "Edges", "ChordalEdges", "Fraction", "PaperFraction"],
        rows=rows,
        notes=[
            "paper: fractions nearly constant across scales 24-26; "
            "small scales run denser so fractions sit above the paper's",
        ],
    )
