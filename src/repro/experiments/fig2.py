"""Figure 2 — average clustering coefficient vs number of neighbors.

Paper panels: (a) RMAT-ER SCALE=10, (b) RMAT-B SCALE=10, (c) GSE5140(UNT).
Shape criteria: synthetic coefficients stay low (ER < 0.06, B < 0.2)
while the bio network reaches ~0.7 at low degree and decays as degree
grows (hubs have the smallest coefficients — the assortativity
discussion of Section IV-B).
"""

from __future__ import annotations

from repro.analysis.clustering import clustering_by_degree
from repro.experiments.report import ExperimentResult
from repro.experiments.testsuite import (
    DEFAULT_SEED,
    GraphSpec,
    build_graph_cached,
    rmat_spec,
)

__all__ = ["run"]


def run(
    scale: int = 10,
    bio_fraction: float = 1.0 / 16.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Regenerate the three panels as (degree, avg clustering) series."""
    specs = [
        rmat_spec("RMAT-ER", scale, seed),
        rmat_spec("RMAT-B", scale, seed),
        GraphSpec(
            name="GSE5140(UNT)", kind="bio", preset="GSE5140(UNT)",
            fraction=bio_fraction, seed=seed,
        ),
    ]
    series: dict[str, list[tuple]] = {}
    peaks: list[list] = []
    for spec in specs:
        graph = build_graph_cached(spec)
        pts = [(d, round(c, 4)) for d, c, _cnt in clustering_by_degree(graph) if d >= 2]
        series[spec.name] = pts
        max_cc = max((c for _d, c in pts), default=0.0)
        peaks.append([spec.name, graph.num_vertices, graph.num_edges, max_cc])
    return ExperimentResult(
        experiment_id="fig2",
        title="Average clustering coefficient vs number of neighbors (paper Fig 2)",
        headers=["Graph", "Vertices", "Edges", "PeakAvgCC"],
        rows=peaks,
        series=series,
        notes=[
            "paper panels: RMAT-ER-10 (<0.06), RMAT-B-10 (<0.2), "
            "GSE5140-UNT (up to ~0.7, decaying with degree)",
            f"bio replica at fraction {bio_fraction:g} of GSE5140(UNT)",
        ],
    )
