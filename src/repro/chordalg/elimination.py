"""Symbolic elimination and fill-in.

Eliminating the vertices of a graph in some order while connecting each
eliminated vertex's remaining neighbors models the symbolic phase of
sparse Cholesky factorisation: the added edges are the *fill-in*.  A
perfect elimination ordering produces **zero fill-in** — which is why
chordal structure drives fill-reducing orderings and preconditioners, one
of the motivations cited for extracting maximal chordal subgraphs (the
chordal subgraph's PEO is a zero-fill skeleton of the matrix).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["elimination_fill_edges", "fill_in"]


def elimination_fill_edges(graph: CSRGraph, order: np.ndarray) -> list[tuple[int, int]]:
    """Edges added when eliminating vertices along ``order``.

    Simulates Gaussian elimination on the graph: removing vertex ``v``
    turns its current neighborhood into a clique; returns the new edges
    (fill), each as a ``(min, max)`` pair, in creation order.
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"order must have shape ({n},), got {order.shape}")
    if n and not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError("order is not a permutation of 0..n-1")

    adj: list[set[int]] = [set(int(x) for x in graph.neighbors(v)) for v in range(n)]
    eliminated = np.zeros(n, dtype=bool)
    fill: list[tuple[int, int]] = []
    for v in order.tolist():
        nbrs = [u for u in adj[v] if not eliminated[u]]
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    fill.append((min(a, b), max(a, b)))
        eliminated[v] = True
    return fill


def fill_in(graph: CSRGraph, order: np.ndarray) -> int:
    """Number of fill edges for the given elimination order.

    Zero iff ``order`` is a perfect elimination ordering (so this doubles
    as an independent PEO oracle in the tests).
    """
    return len(elimination_fill_edges(graph, order))
