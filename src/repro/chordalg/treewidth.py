"""Treewidth and tree decompositions via chordal structure.

The treewidth of a chordal graph is its clique number minus one, and the
clique tree *is* an optimal tree decomposition.  For a general graph, any
elimination order yields a chordal completion whose clique number minus
one upper-bounds the treewidth — connecting the paper's extraction
machinery to the bounded-treewidth algorithmics that motivate chordal
subgraphs as preconditioner/ordering skeletons.
"""

from __future__ import annotations

import numpy as np

from repro.chordalg.cliques import maximal_cliques
from repro.chordalg.cliquetree import clique_tree
from repro.chordalg.elimination import elimination_fill_edges
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["chordal_treewidth", "tree_decomposition", "treewidth_upper_bound"]


def chordal_treewidth(graph: CSRGraph) -> int:
    """Treewidth of a chordal graph: max clique size − 1 (−1 if empty).

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    """
    if graph.num_vertices == 0:
        return -1
    cliques = maximal_cliques(graph)
    if not cliques:
        return -1
    return max(len(c) for c in cliques) - 1


def tree_decomposition(graph: CSRGraph) -> tuple[list[list[int]], list[tuple[int, int]], int]:
    """Optimal tree decomposition of a chordal graph.

    Returns ``(bags, tree_edges, width)`` — the bags are the maximal
    cliques, the tree is the clique tree (junction property holds), and
    ``width = max bag size - 1``.
    """
    bags, edges = clique_tree(graph)
    width = max((len(b) for b in bags), default=0) - 1
    return bags, edges, width


def treewidth_upper_bound(graph: CSRGraph, order: np.ndarray) -> int:
    """Treewidth upper bound from an elimination order of a *general* graph.

    Triangulates along ``order`` (adding fill) and returns the chordal
    completion's treewidth.  A perfect order on an already-chordal graph
    returns the exact treewidth; heuristic orders (e.g. the chordal
    subgraph's PEO) give practical bounds.
    """
    fill = elimination_fill_edges(graph, order)
    if fill:
        edges = np.vstack((graph.edge_array(), np.asarray(fill, dtype=np.int64)))
    else:
        edges = graph.edge_array()
    completed = from_edge_array(graph.num_vertices, edges)
    return chordal_treewidth(completed)
