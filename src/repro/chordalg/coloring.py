"""Graph coloring: optimal on chordal graphs, greedy elsewhere.

Coloring the vertices in *reverse* perfect elimination order with the
smallest available color uses exactly ``ω(G)`` colors on a chordal graph
(clique number = chromatic number — chordal graphs are perfect), turning
an NP-hard problem into a linear sweep.  This is one of the paper's two
headline motivations ("computing ... the chromatic number is NP-hard on
general graphs but [has] polynomial time solutions on chordal graphs").
"""

from __future__ import annotations

import numpy as np

from repro.chordality.mcs import mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering
from repro.errors import NotChordalError
from repro.graph.csr import CSRGraph

__all__ = ["chordal_coloring", "greedy_coloring", "verify_coloring"]


def _smallest_free(used: set[int]) -> int:
    c = 0
    while c in used:
        c += 1
    return c


def greedy_coloring(graph: CSRGraph, order: np.ndarray) -> np.ndarray:
    """First-fit coloring along ``order``; returns a color per vertex."""
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"order must have shape ({n},), got {order.shape}")
    colors = np.full(n, -1, dtype=np.int64)
    for v in order.tolist():
        used = {int(colors[u]) for u in graph.neighbors(v) if colors[u] >= 0}
        colors[v] = _smallest_free(used)
    return colors


def chordal_coloring(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """Optimal coloring of a chordal graph.

    Returns ``(colors, num_colors)`` with ``num_colors`` equal to the
    clique number.  Raises :class:`~repro.errors.NotChordalError` on
    non-chordal input.
    """
    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64), 0
    peo = mcs_peo(graph)
    if not is_perfect_elimination_ordering(graph, peo):
        raise NotChordalError(
            "graph is not chordal; extract a chordal subgraph first"
        )
    colors = greedy_coloring(graph, peo[::-1])
    return colors, int(colors.max(initial=-1)) + 1


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no edge joins equal colors and every vertex is colored."""
    colors = np.asarray(colors)
    if colors.shape != (graph.num_vertices,) or np.any(colors < 0):
        return False
    edges = graph.edge_array()
    if edges.size == 0:
        return True
    return bool(np.all(colors[edges[:, 0]] != colors[edges[:, 1]]))
