"""Maximum clique and maximal-clique enumeration on chordal graphs.

On a chordal graph with perfect elimination ordering ``peo``, the set
``{v} ∪ {later neighbors of v}`` is a clique for every ``v``, and every
maximal clique arises this way (Fulkerson–Gross).  Maximum clique — NP-hard
in general — therefore falls out of one linear sweep, which is precisely
the speed-up the paper's introduction motivates.
"""

from __future__ import annotations

import numpy as np

from repro.chordality.mcs import mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering
from repro.errors import NotChordalError
from repro.graph.csr import CSRGraph

__all__ = ["max_clique", "maximal_cliques"]


def _checked_peo(graph: CSRGraph) -> np.ndarray:
    peo = mcs_peo(graph)
    if not is_perfect_elimination_ordering(graph, peo):
        raise NotChordalError(
            "graph is not chordal; extract a chordal subgraph first "
            "(repro.extract_maximal_chordal_subgraph)"
        )
    return peo


def max_clique(graph: CSRGraph) -> list[int]:
    """A maximum clique of a chordal graph (vertex list, ascending ids).

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    O(V + E) after the chordality check.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    peo = _checked_peo(graph)
    position = np.empty(n, dtype=np.int64)
    position[peo] = np.arange(n)
    best_v = int(peo[0])
    best_size = 1
    for v in peo.tolist():
        later = position[graph.neighbors(v)] > position[v]
        size = int(later.sum()) + 1
        if size > best_size:
            best_size = size
            best_v = v
    later_nbrs = [
        int(u) for u in graph.neighbors(best_v) if position[u] > position[best_v]
    ]
    return sorted([best_v] + later_nbrs)


def maximal_cliques(graph: CSRGraph) -> list[list[int]]:
    """All maximal cliques of a chordal graph (each sorted ascending).

    A chordal graph has at most ``n`` maximal cliques; candidate cliques
    ``{v} ∪ later-neighbors(v)`` that are subsets of an earlier-emitted
    clique are filtered with the standard size test (a candidate is
    maximal iff no neighbor eliminated before ``v`` had a strictly larger
    candidate containing it — here implemented by direct superset check
    against the candidate of the *previous* eliminated neighbor, which is
    sufficient on chordal graphs).
    """
    n = graph.num_vertices
    if n == 0:
        return []
    peo = _checked_peo(graph)
    position = np.empty(n, dtype=np.int64)
    position[peo] = np.arange(n)

    cliques: list[list[int]] = []
    # best_containing[u] = largest |C(x)| over already-eliminated x whose
    # clique-tree parent is u.  Blair-Peyton: C(v) = {v} ∪ madj(v) is
    # non-maximal iff |C(v)| < best_containing[v] (containment can only
    # happen through the clique-tree parent edge on chordal graphs).
    best_containing = np.zeros(n, dtype=np.int64)
    for v in peo.tolist():
        later = [int(u) for u in graph.neighbors(v) if position[u] > position[v]]
        size = len(later) + 1
        if size >= best_containing[v]:
            cliques.append(sorted([v] + later))
        if later:
            parent = min(later, key=lambda x: position[x])
            if size > best_containing[parent]:
                best_containing[parent] = size
    return cliques
