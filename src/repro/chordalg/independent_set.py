"""Maximum independent set on chordal graphs (Gavril's greedy).

Processing vertices in perfect elimination order and taking every vertex
whose neighborhood is still untouched yields a *maximum* independent set
on chordal graphs — another of the NP-hard-in-general problems the
paper's introduction motivates.
"""

from __future__ import annotations

import numpy as np

from repro.chordality.mcs import mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering
from repro.errors import NotChordalError
from repro.graph.csr import CSRGraph

__all__ = ["max_independent_set"]


def max_independent_set(graph: CSRGraph) -> list[int]:
    """A maximum independent set of a chordal graph (sorted vertex list).

    Gavril (1972): sweep a PEO; add ``v`` if none of its neighbors has
    been added yet.  The simplicial structure guarantees optimality.
    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    peo = mcs_peo(graph)
    if not is_perfect_elimination_ordering(graph, peo):
        raise NotChordalError("graph is not chordal; extract a chordal subgraph first")
    blocked = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    for v in peo.tolist():
        if blocked[v]:
            continue
        chosen.append(v)
        blocked[v] = True
        blocked[graph.neighbors(v)] = True
    return sorted(chosen)
