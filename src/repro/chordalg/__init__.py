"""Polynomial-time algorithms on chordal graphs.

The paper's introduction motivates maximal chordal subgraph extraction by
the fact that problems which are NP-hard in general — maximum clique,
chromatic number, maximum independent set — admit linear/polynomial
algorithms on chordal graphs via a perfect elimination ordering, and that
chordal structure drives sparse-matrix orderings (zero fill-in).  This
package supplies those consumers so the examples can demonstrate the
end-to-end workflow: extract a maximal chordal subgraph, then solve on it.
"""

from repro.chordalg.cliques import max_clique, maximal_cliques
from repro.chordalg.coloring import chordal_coloring, greedy_coloring, verify_coloring
from repro.chordalg.independent_set import max_independent_set
from repro.chordalg.cliquetree import clique_tree
from repro.chordalg.elimination import fill_in, elimination_fill_edges
from repro.chordalg.treewidth import (
    chordal_treewidth,
    tree_decomposition,
    treewidth_upper_bound,
)

__all__ = [
    "max_clique",
    "maximal_cliques",
    "chordal_coloring",
    "greedy_coloring",
    "verify_coloring",
    "max_independent_set",
    "clique_tree",
    "fill_in",
    "elimination_fill_edges",
    "chordal_treewidth",
    "tree_decomposition",
    "treewidth_upper_bound",
]
