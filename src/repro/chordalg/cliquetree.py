"""Clique-tree construction for chordal graphs.

A clique tree is a tree over the maximal cliques in which, for every
vertex, the cliques containing it form a connected subtree (the
junction-tree / running-intersection property).  Clique trees underpin
junction-tree inference and sparse Cholesky supernode analysis — two of
the downstream uses that make maximal chordal subgraphs worth extracting.
"""

from __future__ import annotations

from repro.chordalg.cliques import maximal_cliques
from repro.graph.csr import CSRGraph
from repro.util.sorting import sorted_intersect_size

__all__ = ["clique_tree"]


def clique_tree(graph: CSRGraph) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """Build a clique tree of a chordal graph.

    Returns ``(cliques, tree_edges)`` where ``cliques`` is the list of
    maximal cliques (sorted vertex lists) and ``tree_edges`` are index
    pairs forming a maximum-weight spanning tree of the clique-overlap
    graph (weight = intersection size), which is guaranteed to satisfy
    the junction-tree property on chordal graphs.

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input
    (via :func:`maximal_cliques`).
    """
    cliques = maximal_cliques(graph)
    k = len(cliques)
    if k <= 1:
        return cliques, []

    # Prim-style maximum-weight spanning forest over clique intersections.
    # k is at most n on chordal graphs, so the O(k^2) scan is acceptable
    # for the analysis/demo scale this is built for.
    in_tree = [False] * k
    tree_edges: list[tuple[int, int]] = []
    for root in range(k):
        if in_tree[root]:
            continue
        in_tree[root] = True
        component = [root]
        while True:
            best_w = -1
            best_pair: tuple[int, int] | None = None
            for i in component:
                for j in range(k):
                    if in_tree[j]:
                        continue
                    w = sorted_intersect_size(cliques[i], cliques[j])
                    if w > best_w:
                        best_w = w
                        best_pair = (i, j)
            if best_pair is None or best_w <= 0:
                break
            i, j = best_pair
            in_tree[j] = True
            component.append(j)
            tree_edges.append((i, j))
    return cliques, tree_edges
