"""Blocking client for the extraction service.

One :class:`ServiceClient` owns one socket and issues framed requests
sequentially (the protocol is strict request/response, so concurrency
comes from many clients, not many in-flight requests per socket).  Every
typed error response is raised as
:class:`~repro.service.protocol.ServiceError` with its ``code``
preserved, so callers branch on ``exc.code in ("BUSY", "TIMEOUT")``
rather than parsing messages.

::

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        result = client.extract(graph, config={"engine": "process"})
        print(result.num_edges, result.cached, result.served_by)
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.graph.ops import edge_subgraph
from repro.service import protocol
from repro.service.protocol import ProtocolError, ServiceError

__all__ = ["ServiceClient", "ServiceResult", "MutateResult"]


@dataclass
class ServiceResult:
    """One successful ``extract`` response, decoded.

    ``edges`` is the chordal edge set exactly as the server computed it
    (canonicalised ``u < v`` rows in lexicographic order);
    :attr:`subgraph` rebuilds ``G' = (V, EC)`` lazily against the graph
    the request was made with.
    """

    edges: np.ndarray
    graph: CSRGraph
    cached: bool
    served_by: str
    pool: int | None
    engine: str
    schedule: str
    num_iterations: int
    maximality_gap: int
    stitched_bridges: int
    verified: bool = False
    #: Which round bodies ran server-side: "native" (compiled) or "numpy".
    kernel_path: str = "numpy"
    _subgraph: CSRGraph | None = field(default=None, repr=False)

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def subgraph(self) -> CSRGraph:
        """The chordal subgraph ``G' = (V, EC)`` (built lazily, cached)."""
        if self._subgraph is None:
            self._subgraph = edge_subgraph(self.graph, self.edges)
        return self._subgraph


@dataclass
class MutateResult:
    """One successful ``mutate`` response, decoded.

    ``edges`` is the session's current maximal chordal edge set;
    ``session`` is ``"opened"`` (this request shipped a graph) or
    ``"continued"``.  ``applied`` carries the batch counts
    (``{"applied", "inserted", "retained", "deleted"}``) when ops were
    sent, else ``None``.  ``invalidated`` counts the cache entries the
    server evicted for the pre-mutation graph content.
    """

    edges: np.ndarray
    session: str
    num_vertices: int
    num_graph_edges: int
    applied: dict[str, int] | None
    invalidated: int
    content_hash: str | None
    verified: bool = False

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])


class ServiceClient:
    """Framed request/response client over a unix or TCP socket.

    Parameters
    ----------
    socket_path:
        Unix-socket path of a running ``repro serve``.
    host / port:
        TCP alternative (exactly one of ``socket_path`` / ``host``).
    timeout:
        Socket-level ceiling per response (seconds); covers server-side
        execution, so it should exceed any request's ``timeout`` field.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 120.0,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        connect_retries: int = 0,
        retry_delay: float = 0.1,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ReproError(
                "ServiceClient needs exactly one of socket_path= or host="
            )
        self._max_frame = max_frame
        self._sock: socket.socket | None = None
        last_error: Exception | None = None
        for _ in range(max(1, connect_retries + 1)):
            try:
                if socket_path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(timeout)
                    sock.connect(socket_path)
                else:
                    sock = socket.create_connection(
                        (host, port or 0), timeout=timeout
                    )
                self._sock = sock
                return
            except OSError as exc:
                last_error = exc
                time.sleep(retry_delay)
        raise ReproError(
            f"cannot connect to the extraction service "
            f"({socket_path or f'{host}:{port}'}): {last_error}"
        )

    # -- plumbing -------------------------------------------------------

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            raise ReproError("ServiceClient is closed")
        try:
            protocol.send_message(self._sock, message, max_frame=self._max_frame)
            response = protocol.recv_message(self._sock, max_frame=self._max_frame)
        except TimeoutError:
            raise ServiceError(
                "no response within the client timeout", code=protocol.TIMEOUT
            ) from None
        except OSError as exc:
            raise ReproError(f"service connection lost: {exc}") from exc
        if response is None:
            raise ReproError(
                "service closed the connection without a response"
            )
        return protocol.raise_for_error(response)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations -----------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness probe; returns the server's version banner."""
        return self._request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """The server's counter snapshot (queue depth, cache, pools…)."""
        return self._request({"op": "stats"})["stats"]

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and stop (when it allows remote stop)."""
        return self._request({"op": "shutdown"})

    def extract(
        self,
        graph: CSRGraph,
        *,
        config: dict[str, Any] | None = None,
        timeout: float | None = None,
        verify: bool = False,
        no_cache: bool = False,
        binary: bool = True,
    ) -> ServiceResult:
        """Extract ``graph``'s maximal chordal subgraph on the server.

        ``config`` uses the wire vocabulary
        (:data:`~repro.service.protocol.ALLOWED_CONFIG_FIELDS` — e.g.
        ``{"engine": "process", "schedule": "asynchronous"}``).  Raises
        :class:`ServiceError` carrying the server's typed code on any
        rejection (``BUSY``, ``TIMEOUT``, ``INVALID_CONFIG``, …).
        """
        request: dict[str, Any] = {
            "op": "extract",
            "graph": protocol.encode_graph(graph, binary=binary),
        }
        if config:
            request["config"] = dict(config)
        if timeout is not None:
            request["timeout"] = timeout
        if verify:
            request["verify"] = True
        if no_cache:
            request["no_cache"] = True
        response = self._request(request)
        try:
            edges = protocol.decode_edges(response)
        except ProtocolError as exc:  # pragma: no cover - server bug guard
            raise ReproError(f"undecodable extract response: {exc}") from exc
        return ServiceResult(
            edges=edges,
            graph=graph,
            cached=bool(response.get("cached", False)),
            served_by=str(response.get("served_by", "")),
            pool=response.get("pool"),
            engine=str(response.get("engine", "")),
            schedule=str(response.get("schedule", "")),
            num_iterations=int(response.get("num_iterations", 0)),
            maximality_gap=int(response.get("maximality_gap", 0)),
            stitched_bridges=int(response.get("stitched_bridges", 0)),
            verified=bool(response.get("verified", False)),
            kernel_path=str(response.get("kernel_path", "numpy")),
        )

    def mutate(
        self,
        *,
        graph: CSRGraph | None = None,
        ops: list[tuple[str, int, int]] | None = None,
        config: dict[str, Any] | None = None,
        verify: bool = False,
        binary: bool = True,
    ) -> MutateResult:
        """Open or advance this connection's incremental session.

        Pass ``graph`` to open (or replace) the session — ``config`` is
        only legal alongside it; pass ``ops`` (``(op, u, v)`` triples,
        ``op`` in ``("insert", "+", "delete", "-")``) to mutate the
        session's graph.  Both may be combined.  Sessions are
        per-connection: they end when the client closes.
        """
        request: dict[str, Any] = {"op": "mutate"}
        if graph is not None:
            request["graph"] = protocol.encode_graph(graph, binary=binary)
        if config:
            request["config"] = dict(config)
        if ops is not None:
            request["ops"] = [[op, int(u), int(v)] for op, u, v in ops]
        if verify:
            request["verify"] = True
        response = self._request(request)
        try:
            edges = protocol.decode_edges(response)
        except ProtocolError as exc:  # pragma: no cover - server bug guard
            raise ReproError(f"undecodable mutate response: {exc}") from exc
        return MutateResult(
            edges=edges,
            session=str(response.get("session", "")),
            num_vertices=int(response.get("num_vertices", 0)),
            num_graph_edges=int(response.get("num_graph_edges", 0)),
            applied=response.get("applied"),
            invalidated=int(response.get("invalidated", 0)),
            content_hash=response.get("content_hash"),
            verified=bool(response.get("verified", False)),
        )
