"""The ``repro serve`` daemon: warm pools, backpressure, result cache.

Architecture (all threads daemonic, one process)::

    accept thread(s)  --- one per listener (unix socket and/or TCP)
        |
    connection threads --- one per client; framing + request decoding,
        |                  cache lookups, response writing.  A request
        |                  that needs compute is enqueued and awaited
        |                  with its remaining deadline; the connection
        |                  thread is the *only* writer of its socket.
        v
    admission queue   --- bounded (``queue_depth``); a full queue answers
        |                  ``BUSY`` immediately (explicit backpressure,
        |                  never unbounded buffering).
        v
    dispatcher threads -- one per warm ProcessPool; each owns its pool
                           exclusively (no pool locking).  Pool-capable
                           engines run on the pool; in-process engines
                           (superstep/threaded/reference/weighted) run
                           inline on the dispatcher thread, so every
                           request shares one backpressure policy.

Fault containment
-----------------
* **Worker death** — a SIGKILLed/OOM-killed pool worker surfaces as
  :class:`~repro.core.runtime.executors.WorkerTeamError` via the barrier
  agent (the pool self-closes).  The dispatcher rebuilds a fresh warm
  pool and retries the in-flight request once; a second failure answers
  a typed ``WORKER_DIED``.  The server — and every other connection —
  survives.
* **Client death** — a client that disconnects mid-request costs nothing
  but the discarded result: dispatchers never touch sockets, so the
  admission queue cannot wedge; the connection thread notices on write
  and exits.
* **Deadlines** — every request carries a deadline (its ``timeout``
  field, default ``request_timeout``).  Expiring while *queued* skips
  execution entirely; expiring mid-execution answers ``TIMEOUT`` while
  the computed result still lands in the cache (the work is not wasted).
* **Shutdown** — :meth:`ReproServer.shutdown` stops admissions
  (``SHUTTING_DOWN``), drains in-flight requests through the queue's
  FIFO order, joins every thread and closes the pools.

Result cache
------------
Keyed by :func:`~repro.service.protocol.graph_content_hash` ×
:func:`~repro.service.protocol.config_cache_key` (the *resolved*
config).  A hit returns the bit-identical stored edge set without
touching a pool.  Entries are LRU-evicted beyond ``cache_entries`` or
``cache_bytes`` — both ceilings hold at all times.  Nondeterministic
(asynchronous) regimes cache their first answer, which is exactly as
valid as any other the engine could return.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import ExtractionConfig
from repro.core.procpool import ProcessPool
from repro.core.runtime.executors import WorkerTeamError
from repro.core.session import Extractor
from repro.errors import ConfigError, ReproError
from repro.graph.builder import build_graph
from repro.graph.csr import CSRGraph
from repro.service import protocol
from repro.service.protocol import (
    BAD_REQUEST,
    BUSY,
    INTERNAL,
    INVALID_CONFIG,
    SHUTTING_DOWN,
    TIMEOUT,
    VERIFY_FAILED,
    WORKER_DIED,
    ProtocolError,
    error_response,
)

__all__ = ["ServiceConfig", "ReproServer", "ResultCache"]

#: Socket-timeout granularity at which blocked reads/accepts poll the
#: server's stopping flag.
_POLL_SECONDS = 0.25

_QUEUE_SENTINEL = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`ReproServer`, validated at construction.

    At least one listener (``socket_path`` and/or ``host``) is required.
    ``dispatch_delay_s`` is a fault-injection seam: an artificial pause
    a dispatcher takes before executing each request, letting the test
    suite fill the admission queue and expire deadlines
    deterministically; it is 0 in production.
    """

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    num_pools: int = 1
    num_workers: int = 2
    queue_depth: int = 32
    request_timeout: float = 30.0
    drain_timeout: float = 10.0
    cache_entries: int = 128
    cache_bytes: int = 256 * 1024 * 1024
    barrier_timeout: float | None = None
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME
    allow_remote_shutdown: bool = True
    dispatch_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.socket_path is None and self.host is None:
            raise ConfigError(
                "ServiceConfig needs a listener: socket_path (unix) "
                "and/or host (TCP)"
            )
        for name, minimum in (
            ("num_pools", 1),
            ("num_workers", 1),
            ("queue_depth", 1),
            ("cache_entries", 0),
            ("cache_bytes", 0),
        ):
            if getattr(self, name) < minimum:
                raise ConfigError(f"{name} must be >= {minimum}, got {getattr(self, name)}")
        for name in ("request_timeout", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.dispatch_delay_s < 0:
            raise ConfigError(
                f"dispatch_delay_s must be >= 0, got {self.dispatch_delay_s}"
            )


class ResultCache:
    """Thread-safe LRU cache of extracted edge sets.

    Values are stored as immutable bytes; :meth:`get` rebuilds the
    ``(k, 2)`` int64 array, so every hit is bit-identical to the stored
    answer.  Both ceilings (entry count and total byte size) hold after
    every insert; an entry larger than ``max_bytes`` is simply not
    cached.

    Each entry also carries a *verified* bit (:meth:`is_verified` /
    :meth:`mark_verified`): once an answer has passed
    ``verify_extraction`` for its (graph, config) identity, no later
    ``verify=True`` request re-runs the check — verification happens at
    most once per cached entry.  :meth:`invalidate_graph` drops every
    entry whose key belongs to one graph content hash (the targeted
    eviction behind service mutation sessions).
    """

    def __init__(self, max_entries: int, max_bytes: int) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[bytes, dict, bool]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> tuple[np.ndarray, dict] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            raw, meta, _verified = entry
        edges = np.frombuffer(raw, dtype="<i8").reshape(-1, 2)
        return edges, dict(meta)

    def put(
        self, key: tuple, edges: np.ndarray, meta: dict, *, verified: bool = False
    ) -> None:
        raw = np.ascontiguousarray(edges, dtype="<i8").tobytes()
        if len(raw) > self.max_bytes or self.max_entries == 0:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old[0])
            self._entries[key] = (raw, dict(meta), verified)
            self._bytes += len(raw)
            while (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, (dropped, _meta, _verified) = self._entries.popitem(last=False)
                self._bytes -= len(dropped)
                self.evictions += 1

    def is_verified(self, key: tuple) -> bool:
        """True when the entry exists and has already passed verification
        (no LRU promotion, no hit/miss accounting)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry[2]

    def mark_verified(self, key: tuple) -> None:
        """Set the verified bit on an existing entry (no-op when the
        entry was evicted in the meantime)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not entry[2]:
                self._entries[key] = (entry[0], entry[1], True)

    def invalidate_graph(self, content_hash: str) -> int:
        """Drop every entry cached for ``content_hash`` (the first key
        component); returns the number of entries evicted."""
        with self._lock:
            doomed = [k for k in self._entries if k and k[0] == content_hash]
            for k in doomed:
                raw, _meta, _verified = self._entries.pop(k)
                self._bytes -= len(raw)
                self.evictions += 1
        return len(doomed)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class _PendingRequest:
    """One admitted extraction: handoff cell between a connection thread
    (which owns the socket and the deadline) and a dispatcher (which
    owns the compute).  ``state`` transitions under ``lock``:
    ``queued -> running -> done`` or ``* -> abandoned`` (deadline
    expired / client gone); first writer wins, the other side discards.
    """

    __slots__ = ("graph", "config", "cache_key", "no_cache",
                 "deadline", "lock", "event", "state", "response")

    def __init__(self, graph, config, cache_key, no_cache, deadline):
        self.graph: CSRGraph = graph
        self.config: ExtractionConfig = config
        self.cache_key = cache_key
        self.no_cache: bool = no_cache
        self.deadline: float = deadline
        self.lock = threading.Lock()
        self.event = threading.Event()
        self.state = "queued"
        self.response: dict[str, Any] | None = None


class _MutateSession:
    """Per-connection incremental-extraction state.

    A ``mutate`` request with a ``graph`` payload opens (or replaces)
    the connection's session; later ``mutate`` requests on the same
    connection carry only edge ops.  ``content_hash`` tracks the hash of
    the *current* graph so each applied batch can invalidate exactly the
    mutated graph's cache keys (targeted eviction, not a cold flush).
    Owned by a single connection thread — no locking.
    """

    __slots__ = ("extractor", "content_hash")

    def __init__(self) -> None:
        self.extractor = None  # IncrementalExtractor | None
        self.content_hash: str | None = None


class ReproServer:
    """The extraction daemon.  See the module docstring for the design.

    Use as a context manager (or call :meth:`start` / :meth:`shutdown`)::

        with ReproServer(ServiceConfig(socket_path=path)) as server:
            ...  # clients connect; shutdown drains on exit
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.cache = ResultCache(config.cache_entries, config.cache_bytes)
        self._queue: queue.Queue = queue.Queue(maxsize=config.queue_depth)
        self._pools: list[ProcessPool | None] = [None] * config.num_pools
        self._listeners: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        self._conn_threads: set[threading.Thread] = set()
        self._conn_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "extractions": 0,
            "cache_hits": 0,
            "pool_dispatches": 0,
            "inline_dispatches": 0,
            "busy_rejections": 0,
            "timeouts": 0,
            "retries": 0,
            "pool_rebuilds": 0,
            "protocol_errors": 0,
            "connections": 0,
            "verifications": 0,
            "mutations": 0,
            "cache_invalidations": 0,
            "kernel_native": 0,
            "kernel_numpy": 0,
        }
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started = False
        self._tcp_address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind listeners, spawn warm pools, dispatchers and acceptors."""
        if self._stopping.is_set():
            raise ReproError("ReproServer cannot be restarted after shutdown")
        if self._started:
            return self
        self._started = True
        cfg = self.config
        for idx in range(cfg.num_pools):
            self._pools[idx] = self._fresh_pool()
        if cfg.socket_path is not None:
            path = cfg.socket_path
            if os.path.exists(path):
                os.unlink(path)  # stale socket from a dead server
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self._listeners.append(listener)
        if cfg.host is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.host, cfg.port))
            self._tcp_address = listener.getsockname()
            self._listeners.append(listener)
        for listener in self._listeners:
            listener.listen(64)
            listener.settimeout(_POLL_SECONDS)
            thread = threading.Thread(
                target=self._accept_loop,
                args=(listener,),
                daemon=True,
                name="repro-serve-accept",
            )
            thread.start()
            self._threads.append(thread)
        for idx in range(cfg.num_pools):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(idx,),
                daemon=True,
                name=f"repro-serve-dispatch-{idx}",
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _fresh_pool(self) -> ProcessPool:
        """A warm pool: the worker team is spawned *now*, not on the
        first request — pre-binding a seed graph forces the spawn."""
        pool = ProcessPool(
            num_workers=self.config.num_workers,
            barrier_timeout=self.config.barrier_timeout,
        )
        pool.bind(build_graph(3, [(0, 1), (1, 2), (0, 2)]))
        return pool

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)`` when a TCP listener is up."""
        return self._tcp_address

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown` completes."""
        self.start()
        self._stopping.wait()
        self.shutdown()
        self._stopped.wait()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to drain and stop.  Safe to call
        from a signal handler (just sets an event)."""
        self._stopping.set()

    def shutdown(self) -> None:
        """Graceful stop: refuse new work, drain in-flight, tear down.

        Idempotent and callable from any thread (including a connection
        thread serving a ``shutdown`` op — joins skip the caller).
        """
        self._stopping.set()
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            for listener in self._listeners:
                try:
                    listener.close()
                except OSError:
                    pass
            # FIFO sentinels: every request admitted before shutdown is
            # executed (drained) before its dispatcher sees the sentinel.
            deadline = time.monotonic() + self.config.drain_timeout
            for _ in range(self.config.num_pools):
                try:
                    self._queue.put(
                        _QUEUE_SENTINEL,
                        timeout=max(0.1, deadline - time.monotonic()),
                    )
                except queue.Full:  # pragma: no cover - drain overrun
                    break
            me = threading.current_thread()
            for thread in self._threads:
                if thread is not me:
                    thread.join(timeout=max(0.5, deadline - time.monotonic()))
            with self._conn_lock:
                conns = list(self._conn_threads)
            for thread in conns:
                if thread is not me:
                    thread.join(timeout=2 * _POLL_SECONDS + 1.0)
            for idx, pool in enumerate(self._pools):
                if pool is not None:
                    pool.close()
                    self._pools[idx] = None
            if self.config.socket_path and os.path.exists(self.config.socket_path):
                try:
                    os.unlink(self.config.socket_path)
                except OSError:  # pragma: no cover - already gone
                    pass
            self._stopped.set()

    def close(self) -> None:
        """Alias for :meth:`shutdown` (context-manager symmetry)."""
        self.shutdown()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if self._started and not self._stopped.is_set():
                self.shutdown()
        except Exception:
            pass

    # -- stats ----------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += amount

    def stats(self) -> dict[str, Any]:
        """A point-in-time counter snapshot (also served as op=stats)."""
        with self._stats_lock:
            counters = dict(self._counters)
        pools = []
        for pool in self._pools:
            try:
                pids = [p.pid for p in pool._procs] if pool is not None else []
            except Exception:  # pragma: no cover - pool mid-rebuild
                pids = []
            pools.append({"worker_pids": pids})
        counters["queue_depth"] = self._queue.qsize()
        counters["queue_capacity"] = self.config.queue_depth
        counters["cache"] = self.cache.stats()
        counters["pools"] = pools
        counters["stopping"] = self._stopping.is_set()
        return counters

    # -- accept / connection handling -----------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:  # listener closed by shutdown
                return
            self._bump("connections")
            thread = threading.Thread(
                target=self._connection_loop,
                args=(conn,),
                daemon=True,
                name="repro-serve-conn",
            )
            with self._conn_lock:
                self._conn_threads.add(thread)
            thread.start()

    def _connection_loop(self, conn: socket.socket) -> None:
        conn.settimeout(_POLL_SECONDS)
        session = _MutateSession()
        try:
            while not self._stopping.is_set():
                try:
                    request = protocol.recv_message(
                        conn,
                        max_frame=self.config.max_frame_bytes,
                        stop=self._stopping.is_set,
                    )
                except ProtocolError as exc:
                    # One typed error frame, then hang up: the stream is
                    # unsynchronised, so no further frame is trustworthy.
                    self._bump("protocol_errors")
                    self._send(conn, error_response(exc.code, str(exc)))
                    return
                except OSError:  # client reset the connection
                    return
                if request is None:  # clean EOF
                    return
                self._bump("requests")
                response = self._handle_request(request, session)
                if response is None:  # shutdown op: reply sent inside
                    return
                if not self._send(conn, response):
                    return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            with self._conn_lock:
                self._conn_threads.discard(threading.current_thread())

    def _send(self, conn: socket.socket, message: dict[str, Any]) -> bool:
        """Write one response; False when the client is gone (the only
        consequence of a dead client is its own lost response).

        Writes run under a generous timeout (reads keep the short poll
        interval): a client legitimately draining a large frame must not
        be mistaken for a dead one, while a wedged client cannot pin the
        connection thread forever.
        """
        try:
            conn.settimeout(30.0)
            protocol.send_message(
                conn, message, max_frame=self.config.max_frame_bytes
            )
            return True
        except (OSError, ProtocolError):
            return False
        finally:
            try:
                conn.settimeout(_POLL_SECONDS)
            except OSError:  # pragma: no cover - socket died post-send
                pass

    # -- request handling ------------------------------------------------

    def _handle_request(
        self,
        request: dict[str, Any],
        session: _MutateSession | None = None,
    ) -> dict[str, Any] | None:
        try:
            op = request.get("op")
            if op == "ping":
                from repro import __version__

                return {
                    "ok": True,
                    "pong": True,
                    "version": __version__,
                    "protocol": protocol.PROTOCOL_VERSION,
                }
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "shutdown":
                return self._handle_shutdown()
            if op == "extract":
                return self._handle_extract(request)
            if op == "mutate":
                return self._handle_mutate(
                    request, session if session is not None else _MutateSession()
                )
            return error_response(
                BAD_REQUEST,
                f"unknown op {op!r}; expected one of "
                "('ping', 'stats', 'extract', 'mutate', 'shutdown')",
            )
        except ProtocolError as exc:
            return error_response(exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - no tracebacks on the wire
            return error_response(
                INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    def _handle_shutdown(self) -> dict[str, Any] | None:
        if not self.config.allow_remote_shutdown:
            return error_response(
                BAD_REQUEST, "remote shutdown is disabled on this server"
            )
        # Tear down on a helper thread: shutdown() joins connection
        # threads, and this *is* one.  The response goes out first.
        threading.Thread(
            target=self.shutdown, daemon=True, name="repro-serve-shutdown"
        ).start()
        return {"ok": True, "stopping": True}

    def _handle_extract(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._stopping.is_set():
            return error_response(
                SHUTTING_DOWN, "server is draining; no new requests admitted"
            )
        unknown = set(request) - {
            "op", "graph", "config", "timeout", "verify", "no_cache"
        }
        if unknown:
            return error_response(
                BAD_REQUEST, f"unknown request field(s) {sorted(unknown)}"
            )
        if "graph" not in request:
            return error_response(BAD_REQUEST, "extract needs a 'graph' payload")
        graph = protocol.decode_graph(request["graph"])
        config = protocol.decode_config(request.get("config"))
        timeout = protocol.decode_timeout(
            request.get("timeout"), self.config.request_timeout
        )
        verify = bool(request.get("verify", False))
        no_cache = bool(request.get("no_cache", False))

        # The resolved regime is the cache identity; the server's pool
        # size stands in for num_workers on pool-capable engines.
        resolved = config.resolved()
        if resolved.engine_spec.supports_pool:
            resolved = resolved.replace(num_workers=self.config.num_workers)
        cache_key = (
            protocol.graph_content_hash(graph),
            protocol.config_cache_key(resolved),
        )

        if not no_cache:
            hit = self.cache.get(cache_key)
            if hit is not None:
                edges, meta = hit
                self._bump("cache_hits")
                # Verify-once: the verified bit lives with the entry, so
                # repeat hits never re-run verify_extraction.
                if verify and not self.cache.is_verified(cache_key):
                    failure = self._verify_failure(graph, edges, resolved)
                    if failure is not None:
                        return failure
                    self.cache.mark_verified(cache_key)
                response = self._success(
                    graph, resolved, edges, meta,
                    cached=True, served_by="cache", pool=None,
                )
                if verify:
                    response["verified"] = True
                return response

        pending = _PendingRequest(
            graph, config, None if no_cache else cache_key,
            no_cache, time.monotonic() + timeout,
        )
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._bump("busy_rejections")
            return error_response(
                BUSY,
                f"admission queue full ({self.config.queue_depth} deep); "
                "retry later or raise --queue-depth",
            )
        remaining = pending.deadline - time.monotonic()
        pending.event.wait(timeout=max(0.0, remaining))
        with pending.lock:
            if pending.state == "done":
                response = pending.response
            else:
                pending.state = "abandoned"
                response = None
        if response is None:
            self._bump("timeouts")
            return error_response(
                TIMEOUT, f"request exceeded its {timeout:g}s deadline"
            )
        if response.get("ok") and verify:
            # A concurrent request for the same (graph, config) may have
            # verified the freshly cached entry already; only verify when
            # the entry (if any) does not carry the bit yet.
            if not (
                pending.cache_key is not None
                and self.cache.is_verified(pending.cache_key)
            ):
                failure = self._verify_failure(
                    graph, protocol.decode_edges(response), resolved
                )
                if failure is not None:
                    return failure
                if pending.cache_key is not None:
                    self.cache.mark_verified(pending.cache_key)
            response = dict(response)
            response["verified"] = True
        return response

    def _handle_mutate(
        self, request: dict[str, Any], session: _MutateSession
    ) -> dict[str, Any]:
        """PATCH-style incremental re-extraction.

        ``{"op": "mutate", "graph": ...}`` opens (or replaces) the
        connection's session; ``{"op": "mutate", "ops": [[op, u, v],
        ...]}`` mutates it.  Both may be combined in one request.  Each
        applied batch evicts exactly the *pre-mutation* graph's cache
        keys (its content is no longer this session's graph), leaving
        unrelated entries warm.
        """
        if self._stopping.is_set():
            return error_response(
                SHUTTING_DOWN, "server is draining; no new requests admitted"
            )
        unknown = set(request) - {"op", "graph", "config", "ops", "verify"}
        if unknown:
            return error_response(
                BAD_REQUEST, f"unknown request field(s) {sorted(unknown)}"
            )
        ops = protocol.decode_mutations(request.get("ops"))
        verify = bool(request.get("verify", False))
        if "graph" in request:
            graph = protocol.decode_graph(request["graph"])
            config = protocol.decode_config(request.get("config"))
            from repro.core.incremental import IncrementalExtractor

            try:
                session.extractor = IncrementalExtractor(graph, config=config)
            except ConfigError as exc:
                session.extractor = None
                session.content_hash = None
                return error_response(INVALID_CONFIG, str(exc))
            session.content_hash = protocol.graph_content_hash(graph)
            opened = True
        else:
            if "config" in request:
                return error_response(
                    BAD_REQUEST,
                    "'config' is only accepted when opening a mutate "
                    "session with a 'graph' payload",
                )
            if session.extractor is None:
                return error_response(
                    BAD_REQUEST,
                    "no open mutate session on this connection; send a "
                    "'graph' payload first",
                )
            opened = False
        applied = None
        invalidated = 0
        if ops:
            try:
                applied = session.extractor.apply_batch(ops)
            except ValueError as exc:
                # Ops before the offending one were applied: keep the
                # cache coherent with the session graph before bailing.
                invalidated = self._invalidate_session(session)
                response = error_response(BAD_REQUEST, f"mutation rejected: {exc}")
                response["invalidated"] = invalidated
                return response
            self._bump("mutations", applied["applied"])
            invalidated = self._invalidate_session(session)
        edges = session.extractor.edges
        response = {
            "ok": True,
            "session": "opened" if opened else "continued",
            "num_vertices": session.extractor.num_vertices,
            "num_graph_edges": session.extractor.num_edges,
            "applied": applied,
            "invalidated": invalidated,
            "content_hash": session.content_hash,
            **protocol.encode_edges(edges),
        }
        if verify:
            from repro.chordality.verify import verify_extraction

            self._bump("verifications")
            report = verify_extraction(
                session.extractor.graph, edges, check_maximal=True
            )
            if not report.ok:
                return error_response(VERIFY_FAILED, str(report))
            response["verified"] = True
        return response

    def _invalidate_session(self, session: _MutateSession) -> int:
        """Evict the session's pre-mutation cache keys and rehash."""
        evicted = 0
        if session.content_hash is not None:
            evicted = self.cache.invalidate_graph(session.content_hash)
            if evicted:
                self._bump("cache_invalidations", evicted)
        session.content_hash = protocol.graph_content_hash(
            session.extractor.graph
        )
        return evicted

    def _success(
        self,
        graph: CSRGraph,
        resolved: ExtractionConfig,
        edges: np.ndarray,
        meta: dict[str, Any],
        *,
        cached: bool,
        served_by: str,
        pool: int | None,
    ) -> dict[str, Any]:
        return {
            "ok": True,
            "cached": cached,
            "served_by": served_by,
            "pool": pool,
            "engine": resolved.engine,
            "schedule": resolved.schedule,
            **meta,
            **protocol.encode_edges(edges),
        }

    def _verify_failure(
        self, graph: CSRGraph, edges: np.ndarray, resolved: ExtractionConfig
    ) -> dict[str, Any] | None:
        from repro.chordality.verify import verify_extraction

        self._bump("verifications")
        report = verify_extraction(
            graph, edges, check_maximal=resolved.maximalize
        )
        if report.ok:
            return None
        return error_response(VERIFY_FAILED, str(report))

    # -- dispatchers -----------------------------------------------------

    def _dispatch_loop(self, idx: int) -> None:
        while True:
            pending = self._queue.get()
            if pending is _QUEUE_SENTINEL:
                return
            with pending.lock:
                if pending.state == "abandoned":  # expired while queued
                    continue
                pending.state = "running"
            if self.config.dispatch_delay_s:
                time.sleep(self.config.dispatch_delay_s)
            response = self._execute(pending, idx)
            with pending.lock:
                if pending.state == "running":
                    pending.response = response
                    pending.state = "done"
                    pending.event.set()
                # else: abandoned mid-run — result discarded (but cached).

    def _execute(self, pending: _PendingRequest, idx: int) -> dict[str, Any]:
        try:
            edges, meta, served_by = self._run_extraction(pending.config, pending.graph, idx)
        except WorkerTeamError as exc:
            # The pool self-closed; rebuild it warm and retry exactly once.
            self._bump("pool_rebuilds")
            self._bump("retries")
            self._pools[idx] = self._fresh_pool()
            try:
                edges, meta, served_by = self._run_extraction(
                    pending.config, pending.graph, idx
                )
            except WorkerTeamError as retry_exc:
                self._pools[idx] = self._fresh_pool()
                return error_response(
                    WORKER_DIED,
                    f"worker team died twice for one request "
                    f"(first: {exc}; retry: {retry_exc})",
                )
        except ProtocolError as exc:
            return error_response(exc.code, str(exc))
        except ReproError as exc:
            return error_response(INTERNAL, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 - no tracebacks on the wire
            return error_response(INTERNAL, f"{type(exc).__name__}: {exc}")
        self._bump("extractions")
        if pending.cache_key is not None:
            self.cache.put(pending.cache_key, edges, meta)
        resolved = pending.config.resolved()
        if resolved.engine_spec.supports_pool:
            resolved = resolved.replace(num_workers=self.config.num_workers)
        return self._success(
            pending.graph, resolved, edges, meta,
            cached=False, served_by=served_by,
            pool=idx if served_by == "pool" else None,
        )

    def _run_extraction(
        self, config: ExtractionConfig, graph: CSRGraph, idx: int
    ) -> tuple[np.ndarray, dict[str, Any], str]:
        spec = config.engine_spec
        if spec.supports_pool:
            self._bump("pool_dispatches")
            extractor = Extractor(config, pool=self._pools[idx])
            served_by = "pool"
        else:
            self._bump("inline_dispatches")
            extractor = Extractor(config)
            served_by = "inline"
        with extractor:
            result = extractor.extract(graph)
        self._bump(f"kernel_{result.kernel_path}")
        meta = {
            "num_iterations": result.num_iterations,
            "maximality_gap": result.maximality_gap,
            "stitched_bridges": result.stitched_bridges,
            "kernel_path": result.kernel_path,
        }
        return result.edges, meta, served_by
