"""Wire protocol for the extraction service.

Framing
-------
Every message is one *frame*: an 8-byte header — the 4-byte magic
``RPX1`` plus a big-endian ``uint32`` payload length — followed by the
payload, a UTF-8 JSON object.  The magic makes garbage input fail on the
first 4 bytes instead of being misread as an absurd length; the length
prefix is bounded by ``max_frame`` so a hostile prefix can never make the
server allocate unbounded memory.  Any framing violation (bad magic,
oversized length, connection closed mid-frame, payload that is not a
JSON object) raises :class:`ProtocolError` with code ``BAD_FRAME``; the
server answers with exactly one typed error frame and closes the
connection — never a hang, never a traceback over the wire.

Requests (client -> server), one JSON object each::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}
    {"op": "extract", "graph": <graph>, "config": {...}, "timeout": 5.0,
     "verify": false, "no_cache": false}
    {"op": "mutate", "graph": <graph>?, "config": {...}?,
     "ops": [["insert", 0, 1], ["delete", 2, 3], ...]?, "verify": false}

``mutate`` is PATCH-style: a request carrying ``graph`` opens (or
replaces) the connection's incremental session (``config`` is only
legal there); later requests on the same connection carry only ``ops``
(see :func:`decode_mutations`).  Every applied batch invalidates
exactly the pre-mutation graph's cache keys on the server.

Graph payloads come in two interchangeable shapes (see
:func:`encode_graph` / :func:`decode_graph`):

* inline edge list — ``{"n": 4, "edges": [[0, 1], ...],
  "weights": [1.5, ...]?}`` (weights parallel to ``edges``);
* CSR arrays — ``{"csr": {"n": ..., "indptr": <b64>, "indices": <b64>,
  "sorted": true, "weights": <b64>?}}`` with arrays base64-encoded
  little-endian ``int64`` (weights ``float64``), zero-copy on decode.

Responses are ``{"ok": true, ...}`` or a *typed* error
``{"ok": false, "error": {"code": <ERROR_CODES>, "message": ...}}``.
Extraction responses return the edge set base64-encoded
(:func:`encode_edges`), plus ``cached`` / ``pool`` / ``served_by`` /
``num_iterations`` metadata.

Content hashing
---------------
:func:`graph_content_hash` is the cache identity of a graph: SHA-256
over the sorted-adjacency CSR arrays (dtype-normalised, so the same
graph hashes identically however it was shipped) plus a
weighted/unweighted marker and the weight values — a relabeled
isomorphic graph, or the same topology with different (or no) weights,
hashes distinctly.  :func:`config_cache_key` is the companion identity
of a *resolved* :class:`~repro.core.config.ExtractionConfig`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import struct
from typing import Any, Callable

import numpy as np

from repro.core.config import ExtractionConfig
from repro.errors import ConfigError, GraphFormatError, ReproError
from repro.graph.builder import build_graph
from repro.graph.csr import CSRGraph
from repro.graph.weights import attach_edge_weights

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "ERROR_CODES",
    "ALLOWED_CONFIG_FIELDS",
    "ProtocolError",
    "ServiceError",
    "read_frame",
    "write_frame",
    "recv_message",
    "send_message",
    "error_response",
    "raise_for_error",
    "encode_graph",
    "decode_graph",
    "encode_edges",
    "decode_edges",
    "decode_config",
    "decode_mutations",
    "MUTATION_OPS",
    "decode_timeout",
    "graph_content_hash",
    "config_cache_key",
]

#: Frame magic; bump the digit when the wire format changes incompatibly.
MAGIC = b"RPX1"

PROTOCOL_VERSION = 1

#: 8-byte frame header: magic + big-endian uint32 payload length.
HEADER = struct.Struct("!4sI")

#: Default per-frame payload ceiling (64 MiB ~ a scale-22 CSR payload).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: Ceiling on a request's ``timeout`` field (seconds).
MAX_TIMEOUT = 3600.0

# Typed error codes — the complete vocabulary a client must handle.
BAD_FRAME = "BAD_FRAME"  # framing/JSON violation; connection closes after
BAD_REQUEST = "BAD_REQUEST"  # well-framed but malformed request object
BAD_GRAPH = "BAD_GRAPH"  # graph payload rejected
INVALID_CONFIG = "INVALID_CONFIG"  # config rejected (unknown field/value)
BUSY = "BUSY"  # admission queue full (backpressure)
TIMEOUT = "TIMEOUT"  # per-request deadline expired
WORKER_DIED = "WORKER_DIED"  # pool died; retry also failed
SHUTTING_DOWN = "SHUTTING_DOWN"  # server draining; no new admissions
VERIFY_FAILED = "VERIFY_FAILED"  # requested verification rejected output
INTERNAL = "INTERNAL"  # anything else (message only, no traceback)

ERROR_CODES = (
    BAD_FRAME,
    BAD_REQUEST,
    BAD_GRAPH,
    INVALID_CONFIG,
    BUSY,
    TIMEOUT,
    WORKER_DIED,
    SHUTTING_DOWN,
    VERIFY_FAILED,
    INTERNAL,
)

#: Config fields a request may set.  ``num_workers`` is server-owned
#: (the warm pools are sized at startup), ``collect_trace`` /
#: ``cost_params`` are not servable (traces are not JSON), so all three
#: are rejected explicitly rather than silently ignored.
ALLOWED_CONFIG_FIELDS = (
    "engine",
    "variant",
    "schedule",
    "num_threads",
    "renumber",
    "stitch",
    "maximalize",
    "max_iterations",
)


class ProtocolError(ReproError):
    """A request violated the wire protocol or was rejected typed.

    ``code`` is one of :data:`ERROR_CODES`; the server turns the error
    into exactly one ``{"ok": false, "error": {...}}`` response frame.
    """

    def __init__(self, message: str, code: str = BAD_FRAME) -> None:
        super().__init__(message)
        self.code = code


class ServiceError(ReproError):
    """Client-side: the server answered with a typed error response."""

    def __init__(self, message: str, code: str = INTERNAL) -> None:
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Framing


def _recv_exact(
    sock: socket.socket,
    n: int,
    *,
    stop: Callable[[], bool] | None = None,
    what: str = "frame",
) -> bytes | None:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean end before the first byte (peer closed
    at a frame boundary, or ``stop()`` turned true while idle); raises
    :class:`ProtocolError` (``BAD_FRAME``) when the connection ends —
    or ``stop()`` fires — with a partial read, which is a truncated
    frame.  Socket timeouts are used purely as a polling interval for
    ``stop``; without ``stop`` they propagate to the caller.
    """
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if stop is None:
                raise
            if stop():
                if not buf:
                    return None
                raise ProtocolError(
                    f"truncated {what}: server stopping with "
                    f"{len(buf)}/{n} bytes read"
                ) from None
            continue
        if not chunk:
            if not buf:
                return None
            raise ProtocolError(
                f"truncated {what}: connection closed after "
                f"{len(buf)}/{n} bytes"
            )
        buf.extend(chunk)
    return bytes(buf)


def read_frame(
    sock: socket.socket,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    stop: Callable[[], bool] | None = None,
) -> bytes | None:
    """Read one frame's payload; ``None`` on clean end-of-stream.

    Raises :class:`ProtocolError` (code ``BAD_FRAME``) on bad magic, an
    oversized length prefix, or truncation.
    """
    header = _recv_exact(sock, HEADER.size, stop=stop, what="frame header")
    if header is None:
        return None
    magic, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); "
            "not a repro-service client?"
        )
    if length > max_frame:
        raise ProtocolError(
            f"oversized frame: length prefix {length} exceeds the "
            f"{max_frame}-byte ceiling"
        )
    payload = _recv_exact(sock, length, stop=stop, what="frame payload")
    if payload is None:
        raise ProtocolError(
            f"truncated frame: connection closed before the "
            f"{length}-byte payload"
        )
    return payload


def write_frame(
    sock: socket.socket, payload: bytes, *, max_frame: int = DEFAULT_MAX_FRAME
) -> None:
    """Write one frame (header + payload) in a single ``sendall``."""
    if len(payload) > max_frame:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(> {max_frame}-byte ceiling)"
        )
    sock.sendall(HEADER.pack(MAGIC, len(payload)) + payload)


def recv_message(
    sock: socket.socket,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    stop: Callable[[], bool] | None = None,
) -> dict[str, Any] | None:
    """Read one frame and decode its JSON-object payload.

    ``None`` on clean end-of-stream; :class:`ProtocolError`
    (``BAD_FRAME``) on framing violations or a payload that is not a
    JSON object.
    """
    payload = read_frame(sock, max_frame=max_frame, stop=stop)
    if payload is None:
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(
    sock: socket.socket,
    message: dict[str, Any],
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """JSON-encode ``message`` and send it as one frame."""
    write_frame(
        sock,
        json.dumps(message, separators=(",", ":")).encode("utf-8"),
        max_frame=max_frame,
    )


def error_response(code: str, message: str) -> dict[str, Any]:
    """The one shape every failure takes on the wire."""
    return {"ok": False, "error": {"code": code, "message": str(message)}}


def raise_for_error(message: dict[str, Any]) -> dict[str, Any]:
    """Return ``message`` if ``ok``; raise :class:`ServiceError` otherwise."""
    if message.get("ok"):
        return message
    err = message.get("error") or {}
    raise ServiceError(
        err.get("message", "server returned an untyped failure"),
        code=err.get("code", INTERNAL),
    )


# ---------------------------------------------------------------------------
# Graph / edge-set payloads


def _b64(array: np.ndarray, dtype: str) -> str:
    return base64.b64encode(
        np.ascontiguousarray(array, dtype=dtype).tobytes()
    ).decode("ascii")


def _from_b64(text: Any, dtype: str, what: str) -> np.ndarray:
    if not isinstance(text, str):
        raise ProtocolError(f"{what} must be a base64 string", code=BAD_GRAPH)
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"{what} is not valid base64: {exc}", code=BAD_GRAPH)
    item = np.dtype(dtype).itemsize
    if len(raw) % item:
        raise ProtocolError(
            f"{what}: byte length {len(raw)} is not a multiple of {item}",
            code=BAD_GRAPH,
        )
    return np.frombuffer(raw, dtype=dtype)


def encode_graph(graph: CSRGraph, *, binary: bool = True) -> dict[str, Any]:
    """Encode a graph for the wire.

    ``binary=True`` (default) ships the CSR arrays base64-encoded —
    compact and decoded zero-copy; ``binary=False`` ships a plain JSON
    edge list, handy for hand-written requests and debugging.
    """
    if binary:
        csr: dict[str, Any] = {
            "n": graph.num_vertices,
            "indptr": _b64(graph.indptr, "<i8"),
            "indices": _b64(graph.indices, "<i8"),
            "sorted": bool(graph.sorted_adjacency),
        }
        if graph.has_weights:
            csr["weights"] = _b64(graph.arc_weights, "<f8")
        return {"csr": csr}
    payload: dict[str, Any] = {
        "n": graph.num_vertices,
        "edges": graph.edge_array().tolist(),
    }
    if graph.has_weights:
        payload["weights"] = graph.edge_weight_rows().tolist()
    return payload


def _decode_csr_graph(csr: Any) -> CSRGraph:
    if not isinstance(csr, dict):
        raise ProtocolError("'csr' must be an object", code=BAD_GRAPH)
    unknown = set(csr) - {"n", "indptr", "indices", "sorted", "weights"}
    if unknown:
        raise ProtocolError(
            f"unknown csr field(s) {sorted(unknown)}", code=BAD_GRAPH
        )
    indptr = _from_b64(csr.get("indptr"), "<i8", "csr.indptr")
    indices = _from_b64(csr.get("indices"), "<i8", "csr.indices")
    n = csr.get("n", indptr.size - 1)
    if not isinstance(n, int) or n != indptr.size - 1:
        raise ProtocolError(
            f"csr.n ({n!r}) must equal len(indptr) - 1 ({indptr.size - 1})",
            code=BAD_GRAPH,
        )
    weights = None
    if "weights" in csr:
        weights = _from_b64(csr["weights"], "<f8", "csr.weights")
    try:
        graph = CSRGraph(
            indptr,
            indices,
            sorted_adjacency=bool(csr.get("sorted", False)),
            validate=True,
            arc_weights=weights,
        )
        graph.validate_symmetry()
    except GraphFormatError as exc:
        raise ProtocolError(f"malformed CSR payload: {exc}", code=BAD_GRAPH)
    return graph


def _decode_edge_list_graph(payload: dict[str, Any]) -> CSRGraph:
    edges = payload.get("edges")
    if not isinstance(edges, list):
        raise ProtocolError(
            "graph payload needs 'edges' (list of [u, v] pairs) or 'csr'",
            code=BAD_GRAPH,
        )
    try:
        rows = [(int(u), int(v)) for u, v in edges]
    except (TypeError, ValueError):
        raise ProtocolError(
            "'edges' must be a list of [u, v] integer pairs", code=BAD_GRAPH
        )
    n = payload.get("n", max((max(u, v) for u, v in rows), default=-1) + 1)
    if not isinstance(n, int) or n < 0:
        raise ProtocolError(
            f"'n' must be a non-negative integer, got {n!r}", code=BAD_GRAPH
        )
    weights = payload.get("weights")
    try:
        graph = build_graph(n, rows)
        if weights is not None:
            if not isinstance(weights, list) or len(weights) != len(rows):
                raise ProtocolError(
                    "'weights' must be a list parallel to 'edges'",
                    code=BAD_GRAPH,
                )
            graph = attach_edge_weights(
                graph,
                {
                    (min(u, v), max(u, v)): float(w)
                    for (u, v), w in zip(rows, weights)
                },
            )
    except (GraphFormatError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed graph payload: {exc}", code=BAD_GRAPH)
    return graph


def decode_graph(payload: Any) -> CSRGraph:
    """Decode either graph payload shape; :class:`ProtocolError`
    (code ``BAD_GRAPH``) on anything malformed."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"graph payload must be an object, got {type(payload).__name__}",
            code=BAD_GRAPH,
        )
    if "csr" in payload:
        extra = set(payload) - {"csr"}
        if extra:
            raise ProtocolError(
                f"graph payload mixes 'csr' with {sorted(extra)}",
                code=BAD_GRAPH,
            )
        return _decode_csr_graph(payload["csr"])
    unknown = set(payload) - {"n", "edges", "weights"}
    if unknown:
        raise ProtocolError(
            f"unknown graph field(s) {sorted(unknown)}", code=BAD_GRAPH
        )
    return _decode_edge_list_graph(payload)


def encode_edges(edges: np.ndarray) -> dict[str, Any]:
    """Encode an extracted ``(k, 2)`` edge set for a response."""
    e = np.ascontiguousarray(np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    return {"edges_b64": _b64(e, "<i8"), "num_edges": int(e.shape[0])}


def decode_edges(payload: dict[str, Any]) -> np.ndarray:
    """Decode :func:`encode_edges` output back into a ``(k, 2)`` array."""
    flat = _from_b64(payload.get("edges_b64"), "<i8", "edges_b64")
    if flat.size % 2:
        raise ProtocolError(
            f"edges_b64 holds {flat.size} int64s (odd — not (k, 2) rows)"
        )
    edges = flat.reshape(-1, 2)
    declared = payload.get("num_edges")
    if declared is not None and declared != edges.shape[0]:
        raise ProtocolError(
            f"num_edges {declared} != decoded row count {edges.shape[0]}"
        )
    return edges


# ---------------------------------------------------------------------------
# Config payloads


def decode_config(payload: Any) -> ExtractionConfig:
    """Decode a request's ``config`` object into an
    :class:`ExtractionConfig`; :class:`ProtocolError`
    (``INVALID_CONFIG``) on unknown fields, server-owned fields, or any
    value the config itself rejects."""
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"config must be an object, got {type(payload).__name__}",
            code=INVALID_CONFIG,
        )
    for field, why in (
        ("num_workers", "server-owned (the warm pools are sized at startup)"),
        ("collect_trace", "not servable (work traces are not serialisable)"),
        ("cost_params", "not servable (cost params are not serialisable)"),
    ):
        if payload.get(field):
            raise ProtocolError(
                f"config field {field!r} is {why}", code=INVALID_CONFIG
            )
    cleaned = {k: v for k, v in payload.items() if k in ALLOWED_CONFIG_FIELDS}
    unknown = (
        set(payload)
        - set(ALLOWED_CONFIG_FIELDS)
        - {"num_workers", "collect_trace", "cost_params"}
    )
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {sorted(unknown)}; the service "
            f"accepts {list(ALLOWED_CONFIG_FIELDS)}",
            code=INVALID_CONFIG,
        )
    try:
        return ExtractionConfig(**cleaned)
    except (ConfigError, TypeError) as exc:
        raise ProtocolError(str(exc), code=INVALID_CONFIG)


def decode_timeout(value: Any, default: float) -> float:
    """Validate a request's ``timeout`` field (seconds)."""
    if value is None:
        return default
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(
            f"timeout must be a number of seconds, got {value!r}",
            code=BAD_REQUEST,
        )
    timeout = float(value)
    if not (0 < timeout <= MAX_TIMEOUT):
        raise ProtocolError(
            f"timeout must be in (0, {MAX_TIMEOUT:g}] seconds, got {timeout!r}",
            code=BAD_REQUEST,
        )
    return timeout


# ---------------------------------------------------------------------------
# Mutation payloads (op=mutate)

#: Edge-mutation op spellings accepted on the wire (PATCH-style).
MUTATION_OPS = ("insert", "+", "delete", "-")


def decode_mutations(payload: Any) -> list[tuple[str, int, int]]:
    """Decode a mutate request's ``ops`` field: a list of
    ``[op, u, v]`` triples with ``op`` one of :data:`MUTATION_OPS`.

    ``None`` decodes to the empty list (a mutate request may open a
    session without mutating it).  :class:`ProtocolError`
    (``BAD_REQUEST``) on any malformed entry.
    """
    if payload is None:
        return []
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError(
            f"ops must be a list of [op, u, v] triples, "
            f"got {type(payload).__name__}",
            code=BAD_REQUEST,
        )
    mutations: list[tuple[str, int, int]] = []
    for index, row in enumerate(payload):
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise ProtocolError(
                f"ops[{index}] must be an [op, u, v] triple, got {row!r}",
                code=BAD_REQUEST,
            )
        op, u, v = row
        if op not in MUTATION_OPS:
            raise ProtocolError(
                f"ops[{index}]: unknown op {op!r}; expected one of "
                f"{MUTATION_OPS}",
                code=BAD_REQUEST,
            )
        if (
            not isinstance(u, int) or isinstance(u, bool)
            or not isinstance(v, int) or isinstance(v, bool)
        ):
            raise ProtocolError(
                f"ops[{index}]: endpoints must be integers, got {row!r}",
                code=BAD_REQUEST,
            )
        mutations.append(("insert" if op in ("insert", "+") else "delete", u, v))
    return mutations


# ---------------------------------------------------------------------------
# Cache identity


def graph_content_hash(graph: CSRGraph) -> str:
    """SHA-256 content identity of a graph.

    Hashed over the *sorted-adjacency* CSR arrays with dtypes
    normalised, so the same graph hashes identically whether it arrived
    as an edge list or CSR, int32 or int64 — while a relabeled
    isomorphic graph hashes distinctly (content, not isomorphism
    class).  Weighted and unweighted graphs of the same topology hash
    distinctly (an explicit marker plus the weight values).
    """
    g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
    h = hashlib.sha256(b"repro-graph-v1")
    h.update(struct.pack("<q", g.num_vertices))
    h.update(np.ascontiguousarray(g.indptr, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(g.indices, dtype="<i8").tobytes())
    if g.has_weights:
        h.update(b"weighted")
        h.update(np.ascontiguousarray(g.arc_weights, dtype="<f8").tobytes())
    else:
        h.update(b"unweighted")
    return h.hexdigest()


def config_cache_key(config: ExtractionConfig) -> tuple:
    """Cache identity of a *resolved* config — every field that can
    change the answer (or its provenance).  Two requests spelling the
    same regime differently (``schedule=None`` vs the engine's explicit
    default) share a key; any differing resolved field is a miss."""
    return (
        config.engine,
        config.variant,
        config.schedule,
        config.num_threads,
        config.num_workers,
        config.renumber,
        config.stitch,
        config.maximalize,
        config.max_iterations,
    )
