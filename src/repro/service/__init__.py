"""Extraction service: a long-lived daemon serving concurrent clients.

The session API (:class:`~repro.core.session.Extractor`) amortises one
worker-team spawn across a batch; this package lifts that amortisation
into a *server process* that owns a fleet of warm
:class:`~repro.core.procpool.ProcessPool` teams and multiplexes any
number of clients onto them over a unix-socket (or TCP) connection —
the ROADMAP's "millions of users" direction made concrete.

Modules
-------
:mod:`repro.service.protocol`
    The wire format: length-prefixed JSON frames, graph payloads (inline
    edge list or base64 CSR arrays), typed error codes, content hashing.
:mod:`repro.service.server`
    :class:`ReproServer` — admission queue with explicit backpressure
    (bounded depth → ``BUSY``, per-request deadline → ``TIMEOUT``), a
    content-hash × resolved-config result cache, and worker-death
    recovery (pool rebuilt, in-flight request retried once).
:mod:`repro.service.client`
    :class:`ServiceClient` — the blocking client the CLI's ``--server``
    flag uses; one socket, sequential framed requests.

Dynamic graphs: ``client.mutate(graph=g)`` opens a per-connection
incremental session (:class:`~repro.core.incremental.IncrementalExtractor`
server-side); ``client.mutate(ops=[("insert", u, v), ...])`` applies
edge mutations and returns the maintained maximal chordal edge set,
while the server evicts exactly the pre-mutation graph's cache keys.

Quickstart::

    repro serve --socket /tmp/repro.sock --pools 2 --num-workers 4 &
    repro extract graph.mtx --server /tmp/repro.sock

or in Python::

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        result = client.extract(graph)          # ServiceResult
        again = client.extract(graph)
        assert again.cached and (again.edges == result.edges).all()
"""

from repro.service.client import MutateResult, ServiceClient, ServiceResult
from repro.service.protocol import ERROR_CODES, ProtocolError, ServiceError
from repro.service.server import ReproServer, ServiceConfig

__all__ = [
    "ReproServer",
    "ServiceConfig",
    "ServiceClient",
    "ServiceResult",
    "MutateResult",
    "ServiceError",
    "ProtocolError",
    "ERROR_CODES",
]
