"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Input validation failures raise
:class:`GraphFormatError` (malformed construction data) or plain
``ValueError`` (bad scalar arguments), matching common NumPy/SciPy practice.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError, ValueError):
    """Raised when graph construction input is malformed.

    Examples: negative vertex ids, edge endpoints out of range, indptr
    arrays that are not monotonically non-decreasing.
    """


class NotChordalError(ReproError):
    """Raised when an operation requires a chordal graph but the input
    graph is not chordal (e.g. clique-tree construction)."""


class ConvergenceError(ReproError):
    """Raised when an iterative procedure exceeds its iteration budget.

    Algorithm 1 terminates in at most ``Delta`` iterations; exceeding a
    generous multiple of that indicates an internal bug, so the engines
    raise this instead of looping forever.
    """


class MachineModelError(ReproError):
    """Raised for invalid machine-model configurations (e.g. zero
    processors, negative latencies)."""
