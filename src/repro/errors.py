"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Input validation failures raise
:class:`GraphFormatError` (malformed construction data) or
:class:`ConfigError` (bad argument values or knob combinations); both
also subclass ``ValueError``, matching common NumPy/SciPy practice, so
pre-existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError, ValueError):
    """Raised when graph construction input is malformed.

    Examples: negative vertex ids, edge endpoints out of range, indptr
    arrays that are not monotonically non-decreasing.
    """


class ConfigError(ReproError, ValueError):
    """Raised for invalid extraction arguments or knob combinations.

    Examples: unknown engine/variant/schedule names, a schedule the
    selected engine does not support, ``collect_trace`` on an engine
    without trace capability, ``pool=`` with a non-process engine or a
    conflicting ``num_workers``.  Subclasses ``ValueError`` so callers
    written against the pre-session API (which raised bare
    ``ValueError``) are unaffected.
    """


class SessionClosedError(ReproError, RuntimeError):
    """Raised when a closed session or pool is used again.

    Covers :meth:`repro.core.session.Extractor.extract` after
    :meth:`~repro.core.session.Extractor.close` — including the next
    ``next()`` on a :meth:`~repro.core.session.Extractor.stream`
    generator that was mid-iteration when the session closed — and
    :class:`~repro.core.procpool.ProcessPool` operations after the pool
    was closed.  Subclasses ``RuntimeError`` because that is what these
    paths historically raised, so pre-existing ``except RuntimeError``
    call sites keep working; new code should catch :class:`ReproError`.
    """


class NotChordalError(ReproError):
    """Raised when an operation requires a chordal graph but the input
    graph is not chordal (e.g. clique-tree construction)."""


class ConvergenceError(ReproError):
    """Raised when an iterative procedure exceeds its iteration budget.

    Algorithm 1 terminates in at most ``Delta`` iterations; exceeding a
    generous multiple of that indicates an internal bug, so the engines
    raise this instead of looping forever.
    """


class MachineModelError(ReproError):
    """Raised for invalid machine-model configurations (e.g. zero
    processors, negative latencies)."""


class ShardError(ReproError):
    """Raised by the out-of-core sharded extractor (:mod:`repro.shard`).

    Covers a spill directory whose plan does not match the input file
    (stale digest, different shard count), missing per-shard results at
    stitch time, and per-shard verification failures.  The message
    always names the spill directory and shard index involved so a
    failure can be replayed with ``repro shard run --shard N``.
    """
