"""Deterministic random-number-generator helpers.

Every stochastic component in the library (generators, samplers, the
distributed partitioner) accepts either an integer seed or a ready-made
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the benchmark harness passes plain integers and
gets bit-identical graphs on every run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing
        ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used by the thread runtime and the distributed baseline so that each
    worker owns a private stream (no lock contention, no correlated draws).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]
