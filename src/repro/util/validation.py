"""Argument-validation helpers shared across the package.

These raise ``ValueError`` with uniform, greppable messages.  They exist so
that public entry points fail fast with clear errors instead of propagating
cryptic NumPy index errors from deep inside a kernel.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability_vector",
]


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_probability_vector(
    name: str, probs: Sequence[float], length: int | None = None
) -> np.ndarray:
    """Validate a probability vector (entries in [0,1], summing to 1).

    Returns the vector as a float64 array.  Used by the R-MAT generator for
    its four quadrant probabilities.
    """
    arr = np.asarray(probs, dtype=np.float64)
    if length is not None and arr.shape != (length,):
        raise ValueError(f"{name} must have shape ({length},), got {arr.shape}")
    if np.any(arr < 0) or np.any(arr > 1):
        raise ValueError(f"{name} entries must lie in [0, 1], got {arr!r}")
    if not np.isclose(arr.sum(), 1.0, atol=1e-9):
        raise ValueError(f"{name} must sum to 1, got sum={arr.sum()!r}")
    return arr
