"""Sorted-integer-array kernels underpinning the chordal-set operations.

The paper's key micro-optimization (Section V) is that chordal-neighbor sets
are built *in increasing id order*, so the subset test on line 15 of
Algorithm 1 is a linear two-pointer merge — "linear in terms of the size of
the smallest set".  These kernels implement that contract for both Python
lists and NumPy arrays and are exercised heavily by property tests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "is_sorted",
    "is_strictly_sorted",
    "sorted_subset",
    "sorted_subset_arrays",
    "sorted_intersect_size",
    "merge_unique",
]


def is_sorted(values: Sequence[int] | np.ndarray) -> bool:
    """True if ``values`` is non-decreasing."""
    arr = np.asarray(values)
    if arr.size <= 1:
        return True
    return bool(np.all(arr[1:] >= arr[:-1]))


def is_strictly_sorted(values: Sequence[int] | np.ndarray) -> bool:
    """True if ``values`` is strictly increasing (sorted and duplicate-free)."""
    arr = np.asarray(values)
    if arr.size <= 1:
        return True
    return bool(np.all(arr[1:] > arr[:-1]))


def sorted_subset(small: Sequence[int], big: Sequence[int]) -> bool:
    """Two-pointer subset test over strictly increasing sequences.

    Returns True iff every element of ``small`` occurs in ``big``.  Cost is
    ``O(len(small) + len(big))`` in the worst case but exits at the first
    missing element, which is the common case in Algorithm 1 (most subset
    tests fail early on sparse graphs).
    """
    i = 0
    j = 0
    ns = len(small)
    nb = len(big)
    if ns > nb:
        return False
    while i < ns:
        target = small[i]
        while j < nb and big[j] < target:
            j += 1
        if j >= nb or big[j] != target:
            return False
        i += 1
        j += 1
    return True


def sorted_subset_arrays(small: np.ndarray, big: np.ndarray) -> bool:
    """Vectorised subset test for strictly increasing NumPy arrays.

    ``searchsorted`` is ``O(|small| log |big|)``; for the short sets produced
    by Algorithm 1 this is competitive with the two-pointer scan and avoids
    the Python-level loop.
    """
    if small.size == 0:
        return True
    if small.size > big.size:
        return False
    pos = np.searchsorted(big, small)
    if pos[-1] >= big.size:
        return False
    return bool(np.all(big[pos] == small))


def sorted_intersect_size(a: Sequence[int], b: Sequence[int]) -> int:
    """Size of the intersection of two strictly increasing sequences."""
    i = j = count = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        if a[i] == b[j]:
            count += 1
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return count


def merge_unique(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Merge two strictly increasing sequences into one strictly increasing list."""
    out: list[int] = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
    while i < na:
        out.append(a[i])
        i += 1
    while j < nb:
        out.append(b[j])
        j += 1
    return out
