"""Shared utilities: RNG seeding, timing, validation, sorted-array kernels."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.timing import Timer, best_of, format_seconds, median_of
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_probability_vector,
)
from repro.util.sorting import (
    is_sorted,
    is_strictly_sorted,
    sorted_subset,
    sorted_intersect_size,
    merge_unique,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Timer",
    "format_seconds",
    "best_of",
    "median_of",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability_vector",
    "is_sorted",
    "is_strictly_sorted",
    "sorted_subset",
    "sorted_intersect_size",
    "merge_unique",
]
