"""Minimal wall-clock timing helpers used by examples and the harness.

The *measured* numbers in the experiment harness come from either direct
``perf_counter`` spans (small graphs) or the machine models; this module
only supplies the plumbing.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable

__all__ = ["Timer", "format_seconds", "best_of", "median_of"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``.

    The minimum is the standard noise-robust statistic for benchmarking a
    deterministic workload (any excess over the true cost is interference).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def median_of(fn: Callable[[], object], repeats: int, *, warmup: bool = True) -> float:
    """Median wall-clock seconds of ``repeats`` calls (optional warm-up call).

    The median is what the regression baseline records: robust to a single
    interfered repeat in either direction.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup:
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits readable."""
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    return f"{seconds / 60.0:.2f} min"
