"""Minimal wall-clock timing helpers used by examples and the harness.

The *measured* numbers in the experiment harness come from either direct
``perf_counter`` spans (small graphs) or the machine models; this module
only supplies the plumbing.
"""

from __future__ import annotations

import time

__all__ = ["Timer", "format_seconds"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits readable."""
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    return f"{seconds / 60.0:.2f} min"
