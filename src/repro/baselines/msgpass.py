"""Simulated message-passing substrate for the distributed baseline.

The distributed algorithm of Dempsey et al. originally runs over MPI; this
module provides the minimal substrate needed to structure that algorithm
the same way offline: per-rank inboxes, tagged sends, and bulk-synchronous
exchange rounds, with byte/message accounting so the experiments can report
the communication volume the paper's Section II discusses (scalability
proportional to ``b²/Δ`` in the number of border edges ``b``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["MessageStats", "Network"]


@dataclass
class MessageStats:
    """Cumulative traffic counters of a :class:`Network`."""

    messages: int = 0
    items: int = 0
    by_tag: dict[str, int] = field(default_factory=dict)

    def record(self, tag: str, payload_len: int) -> None:
        self.messages += 1
        self.items += payload_len
        self.by_tag[tag] = self.by_tag.get(tag, 0) + 1


class Network:
    """Bulk-synchronous message transport between ``num_ranks`` processes.

    Messages sent during a round become visible only after
    :meth:`exchange` — mirroring the communication/computation phases of
    the MPI original.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.stats = MessageStats()
        self._outboxes: dict[tuple[int, str], list] = defaultdict(list)
        self._inboxes: dict[tuple[int, str], list] = defaultdict(list)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range for {self.num_ranks} ranks")

    def send(self, dst: int, tag: str, payload: list) -> None:
        """Queue ``payload`` (a list of items) for delivery to ``dst``."""
        self._check_rank(dst)
        self._outboxes[(dst, tag)].append(list(payload))
        self.stats.record(tag, len(payload))

    def exchange(self) -> None:
        """Deliver all queued messages (the round barrier)."""
        for key, msgs in self._outboxes.items():
            self._inboxes[key].extend(msgs)
        self._outboxes.clear()

    def recv_all(self, rank: int, tag: str) -> list[list]:
        """Drain and return every delivered message for ``(rank, tag)``."""
        self._check_rank(rank)
        msgs = self._inboxes.pop((rank, tag), [])
        return msgs
