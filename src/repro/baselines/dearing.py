"""Serial MAXCHORD algorithm (Dearing, Shier & Warner, 1988).

This is the algorithm the paper describes in Section II and whose
chordality test Algorithm 1 parallelises:

    "An initial vertex is marked as selected.  This vertex and all its
    associated edges are marked as part of the chordal subgraph.
    Subsequent steps in the traversal select an yet unmarked vertex that
    [...] has the highest number of edges to the partly formed chordal
    subgraph.  Additional edges of this vertex are added to the subgraph
    if they maintain the chordal property."

Formally, every unselected vertex ``w`` carries a *label* ``L(w)`` — the
set of selected neighbors it may connect to while preserving chordality
(``L(w)`` is always a clique of the current subgraph).  Each step selects
an unselected vertex ``w*`` with maximum ``|L(w*)|``, adds the edges
``{(w*, u) : u ∈ L(w*)}``, and then updates neighbors: for every
unselected neighbor ``w`` of ``w*``, if ``L(w) ⊆ L(w*)`` then ``w*`` joins
``L(w)``.  Unlike Algorithm 1's fixed id-order parents, the max-label
selection makes the subset test exact — Dearing et al. prove the result
is always a **maximal** chordal subgraph, which makes this baseline the
library's certified-maximal reference (property-tested against the
checker).

Complexity ``O(|E| * Δ)`` with the lazy max-heap below.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["dearing_max_chordal"]


def dearing_max_chordal(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Extract a maximal chordal edge set with serial MAXCHORD.

    Parameters
    ----------
    graph:
        Input graph.
    start:
        The initially selected vertex of the paper's description (ties
        thereafter break toward smaller vertex id, making the output
        deterministic).

    Returns
    -------
    ``(k, 2)`` edge array of the maximal chordal subgraph, rows in
    selection order.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty((0, 2), dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for n={n}")

    labels: list[set[int]] = [set() for _ in range(n)]
    selected = np.zeros(n, dtype=bool)
    edges: list[tuple[int, int]] = []

    # Lazy max-heap of (-|L|, vertex); stale entries skipped on pop.
    heap: list[tuple[int, int]] = []

    def push(w: int) -> None:
        heapq.heappush(heap, (-len(labels[w]), w))

    selected[start] = True
    for w in graph.neighbors(start):
        w = int(w)
        labels[w].add(start)
        push(w)
    for v in range(n):
        if v != start and not labels[v]:
            push(v)  # zero-label vertices must still be selected eventually

    remaining = n - 1
    while remaining:
        neg_size, w_star = heapq.heappop(heap)
        if selected[w_star] or -neg_size != len(labels[w_star]):
            continue  # stale heap entry
        selected[w_star] = True
        remaining -= 1
        lbl = labels[w_star]
        for u in sorted(lbl):
            edges.append((u, w_star))
        for w in graph.neighbors(w_star):
            w = int(w)
            if selected[w]:
                continue
            if labels[w] <= lbl:
                labels[w].add(w_star)
                push(w)

    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(edges, dtype=np.int64)
