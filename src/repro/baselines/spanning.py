"""BFS spanning forest — the trivial chordal subgraph baseline.

Any forest is chordal (no cycles at all), so a spanning forest is the
cheapest chordal subgraph with maximum connectivity; the paper's intro
mentions spanning-tree extraction as the prior art in multithreaded graph
sampling.  Comparing its edge count against Algorithm 1's shows how much
denser a *maximal* chordal subgraph is (the paper's 6-11% chordal-edge
fractions versus the forest's ``(n - #components)/m``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import bfs_levels
from repro.graph.csr import CSRGraph

__all__ = ["spanning_forest_edges"]


def spanning_forest_edges(graph: CSRGraph) -> np.ndarray:
    """Edges of a BFS spanning forest (one BFS tree per component).

    Returns a ``(k, 2)`` array with ``k = n - #components``; rows are
    (parent, child) in BFS discovery order.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    edges: list[tuple[int, int]] = []
    for root in range(n):
        if visited[root]:
            continue
        levels = bfs_levels(graph, root)
        members = np.flatnonzero(levels >= 0)
        members = members[~visited[members]]
        visited[members] = True
        # Recover BFS tree parents: for each non-root member pick its
        # smallest neighbor one level up (deterministic).
        for w in members:
            w = int(w)
            if w == root:
                continue
            lw = levels[w]
            parent = -1
            for u in graph.neighbors(w):
                u = int(u)
                if levels[u] == lw - 1 and (parent < 0 or u < parent):
                    parent = u
            if parent >= 0:
                edges.append((parent, w))
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(edges, dtype=np.int64)
