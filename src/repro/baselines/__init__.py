"""Baselines the paper compares against or builds upon.

* :mod:`repro.baselines.dearing` — the serial Dearing–Shier–Warner
  MAXCHORD algorithm (paper Section II, reference [1]); the source of the
  subset test Algorithm 1 parallelises.
* :mod:`repro.baselines.distributed` — the distributed-memory
  partition + border-edge algorithm of Dempsey/Duraisamy et al. (paper
  references [4], [5], [8]), run over a simulated message-passing
  substrate (:mod:`repro.baselines.msgpass`).
* :mod:`repro.baselines.spanning` — BFS spanning forest, the trivial
  chordal subgraph lower bound.
"""

from repro.baselines.dearing import dearing_max_chordal
from repro.baselines.distributed import (
    DistributedResult,
    distributed_nearly_chordal,
)
from repro.baselines.msgpass import Network, MessageStats
from repro.baselines.spanning import spanning_forest_edges

__all__ = [
    "dearing_max_chordal",
    "DistributedResult",
    "distributed_nearly_chordal",
    "Network",
    "MessageStats",
    "spanning_forest_edges",
]
