"""Distributed partition + border-edge baseline (Dempsey et al.).

Paper Section II describes the prior distributed-memory algorithm
([4], [5], and the communication-free variant [8]) that motivated the
multithreaded redesign:

1. Partition the vertex set across ``p`` processors; an edge whose
   endpoints share a processor is *local*, otherwise it is a **border
   edge**.
2. Each processor runs the serial Dearing algorithm on its local induced
   subgraph, yielding local chordal edges.
3. Border edges are exchanged; a border edge is accepted when it forms a
   triangle with already-accepted chordal edges.

The result is only *nearly* chordal — accepted border edges can close
cycles longer than three, and the cycle-elimination fixups may cascade
("in the worst case the algorithm becomes sequential").  This module
reproduces the scheme over the simulated message-passing substrate,
reports the communication volume (∝ ``b²/Δ`` in the paper's analysis),
and measures exactly how non-chordal the output is; an optional
certified ``repair`` mode re-admits border edges one at a time under the
incremental addability test instead (chordal by construction, still not
necessarily maximal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dearing import dearing_max_chordal
from repro.baselines.msgpass import MessageStats, Network
from repro.chordality.maximality import edge_addable
from repro.chordality.recognition import is_chordal
from repro.graph.csr import CSRGraph
from repro.graph.ops import edge_subgraph, induced_subgraph
from repro.util.rng import make_rng

__all__ = ["DistributedResult", "distributed_nearly_chordal"]


@dataclass
class DistributedResult:
    """Output of the distributed baseline."""

    edges: np.ndarray
    num_parts: int
    border_edges: int
    accepted_border_edges: int
    chordal: bool
    stats: MessageStats = field(default_factory=MessageStats)

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])


def _partition_vertices(n: int, num_parts: int, strategy: str, rng) -> np.ndarray:
    """Assign each vertex a part id."""
    if strategy == "block":
        # Contiguous blocks — what a distributed CSR naturally gets.
        parts = np.minimum(np.arange(n) * num_parts // max(n, 1), num_parts - 1)
        return parts.astype(np.int64)
    if strategy == "random":
        return rng.integers(0, num_parts, size=n, dtype=np.int64)
    raise ValueError(f"unknown partition strategy {strategy!r}")


def distributed_nearly_chordal(
    graph: CSRGraph,
    num_parts: int,
    *,
    strategy: str = "block",
    repair: bool = False,
    seed=None,
) -> DistributedResult:
    """Run the partitioned Dearing + border-triangle algorithm.

    Parameters
    ----------
    graph:
        Input graph.
    num_parts:
        Number of simulated processors (>= 1).
    strategy:
        ``"block"`` (contiguous vertex blocks) or ``"random"`` partition —
        the paper notes many networks are hard to partition, which random
        assignment emulates adversarially.
    repair:
        Use the certified incremental addability test when admitting
        border edges (guarantees a chordal result) instead of the paper's
        triangle heuristic.
    seed:
        RNG seed for the random partition.

    Returns
    -------
    :class:`DistributedResult` — including whether the combined edge set
    is actually chordal (with the triangle heuristic it often is not,
    which is the paper's motivation for Algorithm 1).
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    rng = make_rng(seed)
    n = graph.num_vertices
    part_of = _partition_vertices(n, num_parts, strategy, rng)
    net = Network(num_parts)

    # --- Phase 1: local Dearing runs (concurrent in the original) -------
    local_edges: list[np.ndarray] = []
    for p in range(num_parts):
        members = np.flatnonzero(part_of == p)
        if members.size == 0:
            local_edges.append(np.empty((0, 2), dtype=np.int64))
            continue
        sub, mapping = induced_subgraph(graph, members)
        if sub.num_edges == 0:
            local_edges.append(np.empty((0, 2), dtype=np.int64))
            continue
        local = dearing_max_chordal(sub)
        local_edges.append(mapping[local] if local.size else local)

    accepted = np.vstack([e for e in local_edges if e.size] or
                         [np.empty((0, 2), dtype=np.int64)])
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in accepted:
        adj[int(u)].add(int(v))
        adj[int(v)].add(int(u))

    # --- Phase 2: border-edge exchange ----------------------------------
    all_edges = graph.edge_array()
    border_mask = part_of[all_edges[:, 0]] != part_of[all_edges[:, 1]]
    border = all_edges[border_mask]
    # Each border edge is sent to the lower-rank endpoint's processor,
    # which decides; decisions are broadcast back (mirrors [5]; the
    # communication-free variant [8] instead duplicates decisions).
    for u, v in border:
        owner = int(min(part_of[u], part_of[v]))
        net.send(owner, "border", [(int(u), int(v))])
    net.exchange()

    graph_adj: list[set[int]] = [
        set(int(x) for x in graph.neighbors(v)) for v in range(n)
    ]
    accepted_border: list[tuple[int, int]] = []
    for p in range(num_parts):
        for msg in net.recv_all(p, "border"):
            for u, v in msg:
                if repair:
                    ok = v not in adj[u] and edge_addable(adj, u, v)
                else:
                    # Paper's heuristic: the border edge is accepted if it
                    # "forms a triangle with a chordal edge" — i.e. some
                    # third vertex closes a triangle through at least one
                    # already-accepted chordal edge (the other side may be
                    # any graph edge).  This is what admits long cycles and
                    # makes the result only *nearly* chordal.
                    ok = bool(adj[u] & graph_adj[v]) or bool(adj[v] & graph_adj[u])
                if ok:
                    adj[u].add(v)
                    adj[v].add(u)
                    accepted_border.append((u, v))
                    net.send(p, "decision", [(u, v)])
    net.exchange()

    if accepted_border:
        accepted = np.vstack((accepted, np.asarray(accepted_border, dtype=np.int64)))

    combined = edge_subgraph(graph, accepted)
    return DistributedResult(
        edges=accepted,
        num_parts=num_parts,
        border_edges=int(border.shape[0]),
        accepted_border_edges=len(accepted_border),
        chordal=is_chordal(combined),
        stats=net.stats,
    )
