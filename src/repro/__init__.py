"""repro — Multithreaded maximal chordal subgraph extraction.

A complete reproduction of *"A Novel Multithreaded Algorithm for Extracting
Maximal Chordal Subgraphs"* (Halappanavar, Feo, Dempsey, Ali, Bhowmick —
ICPP 2012), including the graph substrate, the paper's test-suite
generators, the serial/threaded/process extraction engines, the batch
pipeline (:func:`extract_many` over a persistent process pool), graph-file
IO (:func:`load_graph` / :func:`save_graph` for MatrixMarket, SNAP, METIS,
gzip edge lists, npz), the Dearing–Shier–Warner and distributed baselines,
chordality verification, machine models for the Cray XMT and AMD Opteron
platforms, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart
----------
>>> from repro import rmat_b, extract_maximal_chordal_subgraph
>>> g = rmat_b(10, seed=1)
>>> result = extract_maximal_chordal_subgraph(g)
>>> 0 < result.num_chordal_edges <= g.num_edges
True

Many graphs under one regime are a session — one validated
:class:`ExtractionConfig`, one :class:`Extractor`, one worker-team spawn:

>>> with Extractor(ExtractionConfig()) as ex:
...     results = ex.extract_many([g, g])
>>> len(results)
2

From the shell, the same workflow is ``repro generate`` / ``repro
extract`` (see :mod:`repro.cli`).  ``README.md`` has the full tour.
"""

from repro.core import (
    ChordalResult,
    ExtractionConfig,
    Extractor,
    IncrementalExtractor,
    EngineSpec,
    register_engine,
    get_engine,
    engine_names,
    schedule_names,
    extract_maximal_chordal_subgraph,
    extract_many,
    reference_max_chordal,
    superstep_max_chordal,
    threaded_max_chordal,
    process_max_chordal,
    ProcessPool,
    stitch_components,
)
from repro.errors import ConfigError, ReproError, SessionClosedError
from repro.chordality import (
    is_chordal,
    is_maximal_chordal_subgraph,
    mcs_peo,
    lexbfs_peo,
    is_perfect_elimination_ordering,
    verify_extraction,
)
from repro.graph import (
    CSRGraph,
    build_graph,
    from_edge_array,
    edge_subgraph,
    bfs_renumber,
    connected_components,
    load_graph,
    save_graph,
)
from repro.graph.generators import (
    rmat_er,
    rmat_g,
    rmat_b,
    rmat_graph,
    RMATParams,
    bio_network,
    correlation_network,
    synthetic_expression,
)

__version__ = "1.1.0"

__all__ = [
    "ChordalResult",
    "ExtractionConfig",
    "Extractor",
    "IncrementalExtractor",
    "EngineSpec",
    "register_engine",
    "get_engine",
    "engine_names",
    "schedule_names",
    "ConfigError",
    "ReproError",
    "SessionClosedError",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "reference_max_chordal",
    "superstep_max_chordal",
    "threaded_max_chordal",
    "process_max_chordal",
    "ProcessPool",
    "stitch_components",
    "is_chordal",
    "is_maximal_chordal_subgraph",
    "verify_extraction",
    "mcs_peo",
    "lexbfs_peo",
    "is_perfect_elimination_ordering",
    "CSRGraph",
    "build_graph",
    "from_edge_array",
    "edge_subgraph",
    "bfs_renumber",
    "connected_components",
    "load_graph",
    "save_graph",
    "rmat_er",
    "rmat_g",
    "rmat_b",
    "rmat_graph",
    "RMATParams",
    "bio_network",
    "correlation_network",
    "synthetic_expression",
    "__version__",
]
